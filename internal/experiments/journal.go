package experiments

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"mdspec/internal/atomicio"
	"mdspec/internal/faultinject"
)

// The journal is the sweep's write-ahead checkpoint store: every
// completed (benchmark, configuration) simulation is appended to
// <dir>/runs.journal as one length-prefixed, checksummed JSON entry the
// moment it finishes, and `mdexp -resume <dir>` replays the file so
// already-finished cells of a killed sweep are primed into the runner's
// memo cache instead of re-simulated. Because each segment's statistics
// depend only on (recording, config, options) — the determinism
// contract the rest of the repository enforces — a replayed cell is
// bit-identical to re-running it, which makes resume-after-SIGKILL
// equivalent to an uninterrupted sweep.
//
// On-disk format: a magic line, then frames of
//
//	uint32 big-endian payload length
//	uint32 big-endian CRC-32 (IEEE) of the payload
//	payload JSON (one journalEntry)
//
// The first entry is a meta record fingerprinting the options that
// produced the journal (runner version, instruction budget, sampling
// windows); replay refuses a journal written under different options,
// since its cells would not be the cells of this sweep. Appends are
// fsynced entry by entry, so a crash can lose at most the entry being
// written — and a torn tail (truncated frame or checksum mismatch) is
// detected on the next open and truncated away, never parsed into the
// cache.

// journalName is the WAL's filename inside a -resume directory.
const journalName = "runs.journal"

// journalMagic identifies (and versions) the file format.
const journalMagic = "mdspec-journal/1\n"

// Segment naming: a multi-process journal directory holds one
// `runs.<id>.journal` per writer, each owned through a sibling
// `runs.<id>.lease` file, alongside (optionally) the legacy
// single-writer runs.journal, which is merged read-only.
const (
	segmentPrefix = "runs."
	segmentSuffix = ".journal"
	leaseSuffix   = ".lease"
)

// DefaultLeaseTTL is how long a segment lease stays valid without a
// heartbeat refresh. A writer that has not heartbeated for a full TTL
// is presumed dead and its lease may be reclaimed; live writers should
// heartbeat several times per TTL (see Journal.Heartbeat).
const DefaultLeaseTTL = 10 * time.Second

// Fingerprint identifies the provenance tuple a result cache or
// checkpoint journal is keyed under, beyond the per-cell (benchmark,
// config hash) pair: the runner revision, the instruction budget, and
// the sampling windows. Two sweeps with equal Fingerprints request the
// same cells; mdserve uses it to refuse requests whose cells would not
// be this server's cells, exactly as the journal refuses a foreign
// file.
type Fingerprint struct {
	Runner           string `json:"runner_version"`
	Insts            int64  `json:"insts"`
	Sampled          bool   `json:"sampled"`
	TimingWindow     int64  `json:"timing_window,omitempty"`
	FunctionalWindow int64  `json:"functional_window,omitempty"`
	SegmentPeriods   int    `json:"segment_periods,omitempty"`
	// Phases is the phase cluster count of a PhaseSampled sweep (0 when
	// phase selection is off): phase-weighted cells are not the cells of
	// an exhaustive sampled sweep, so the two must not prime each other.
	Phases int `json:"phases,omitempty"`
}

// Fingerprint derives the provenance fingerprint of the options: the
// journal's meta header and the mdserve request-validation key.
func (opt Options) Fingerprint() Fingerprint {
	m := Fingerprint{Runner: RunnerVersion, Insts: opt.Insts, Sampled: opt.Sampled}
	if opt.Sampled {
		m.TimingWindow = opt.timingWindow()
		m.FunctionalWindow = opt.functionalWindow()
		m.SegmentPeriods = opt.SegmentPeriods
		if opt.PhaseSampled {
			m.Phases = opt.phases()
		}
	}
	return m
}

// journalEntry is one framed record: exactly one of Meta or Run is set.
type journalEntry struct {
	Meta *Fingerprint `json:"meta,omitempty"`
	Run  *RunRecord   `json:"run,omitempty"`
}

// Journal is an append-only, checksummed WAL of completed runs.
// Appends are serialized and fsynced; it is safe for concurrent use by
// a Runner's sweep workers. A Journal opened as a segment
// (OpenJournalSegment) additionally holds its segment's lease, which
// Heartbeat refreshes and Close releases.
type Journal struct {
	mu    sync.Mutex
	f     *os.File   //md:guardedby mu
	lease *leaseInfo //md:guardedby mu — nil for the legacy single-writer journal
	path  string     // immutable after OpenJournal
	// leasePath is the lease file's location; immutable, "" when unleased.
	leasePath string
}

// leaseInfo is the JSON body of a runs.<id>.lease file: who owns the
// segment and when they last proved they were alive.
type leaseInfo struct {
	Owner         string `json:"owner"`
	PID           int    `json:"pid"`
	AcquiredUnix  int64  `json:"acquired_unix"`
	HeartbeatUnix int64  `json:"heartbeat_unix"`
}

// ErrLeaseHeld reports that a journal segment is owned by another
// writer whose lease is still fresh (heartbeat within the TTL).
type ErrLeaseHeld struct {
	Path string        // the lease file
	PID  int           // the owner's pid, as recorded in the lease
	Age  time.Duration // time since the owner's last heartbeat
}

func (e *ErrLeaseHeld) Error() string {
	return fmt.Sprintf("journal: segment lease %s held by pid %d (heartbeat %.1fs ago)", e.Path, e.PID, e.Age.Seconds())
}

// OpenJournal opens (or creates) the journal in dir for a sweep running
// with opt, and returns the run records replayed from it (deduplicated,
// last entry per (bench, config hash) wins — in practice cells are
// journaled once). A torn tail left by a crash is truncated before the
// journal is reopened for appending. A journal written under different
// options (budget, sampling windows, runner version) is rejected: its
// cells belong to a different sweep.
func OpenJournal(dir string, opt Options) (*Journal, []RunRecord, error) {
	if err := atomicio.ProbeDir(dir); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	return openJournalFile(filepath.Join(dir, journalName), opt.Fingerprint())
}

// SegmentPath returns the journal segment file a writer with the given
// id appends to inside dir.
func SegmentPath(dir, id string) string {
	return filepath.Join(dir, segmentPrefix+id+segmentSuffix)
}

func leasePath(dir, id string) string {
	return filepath.Join(dir, segmentPrefix+id+leaseSuffix)
}

// validSegmentID restricts segment ids to filename-safe tokens so a
// crafted id cannot escape the journal directory or collide with the
// legacy runs.journal.
func validSegmentID(id string) error {
	if id == "" {
		return fmt.Errorf("journal: empty segment id")
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return fmt.Errorf("journal: segment id %q: only [A-Za-z0-9_-] allowed", id)
		}
	}
	return nil
}

// OpenJournalSegment opens this writer's own journal segment
// (runs.<id>.journal) in dir under an exclusive lease, truncating the
// segment's torn tail exactly as OpenJournal does for the legacy file,
// and returns the run records merged from *every* segment in dir —
// the legacy runs.journal, other writers' live segments, and this one.
// A fresh lease carries a heartbeat timestamp the owner must refresh
// (Heartbeat) several times per ttl; a lease whose heartbeat is older
// than a full ttl is presumed abandoned by a dead writer and is
// reclaimed. ttl <= 0 selects DefaultLeaseTTL.
//
// Torn tails of *other* writers' segments are skipped, never
// truncated: a tear there is either a live append in progress or a
// crash their next OpenJournalSegment will repair under its own lease.
func OpenJournalSegment(dir, id string, opt Options, ttl time.Duration) (*Journal, []RunRecord, error) {
	if err := atomicio.ProbeDir(dir); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	if err := validSegmentID(id); err != nil {
		return nil, nil, err
	}
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	lease, err := acquireLease(dir, id, ttl)
	if err != nil {
		return nil, nil, err
	}
	j, _, err := openJournalFile(SegmentPath(dir, id), opt.Fingerprint())
	if err != nil {
		os.Remove(leasePath(dir, id)) //md:errok releasing a just-acquired lease on a failing open; the open error is the one reported
		return nil, nil, err
	}
	//md:nolock single-owner: OpenJournalSegment sets the lease before the Journal is published to any other goroutine
	j.lease = lease
	j.leasePath = leasePath(dir, id)
	recs, err := ReplayJournalDir(dir, opt)
	if err != nil {
		jerr := j.Close()
		_ = jerr //md:errok cleanup on an already-failing open; the replay error is the one reported
		return nil, nil, err
	}
	return j, recs, nil
}

// ReplayJournalDir replays every journal segment in dir read-only —
// the legacy runs.journal plus all runs.<id>.journal segments, in
// lexical filename order — and returns the merged, deduplicated run
// records (last entry per (bench, config hash) wins, as within a
// single file; cells are deterministic, so any copy is the cell). Torn
// tails end each file's scan without failing the merge. A segment
// written under a different provenance fingerprint is an error, just
// as for a single-file journal.
func ReplayJournalDir(dir string, opt Options) ([]RunRecord, error) {
	want := opt.Fingerprint()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() && (name == journalName ||
			(strings.HasPrefix(name, segmentPrefix) && strings.HasSuffix(name, segmentSuffix))) {
			files = append(files, name)
		}
	}
	sort.Strings(files)
	var order []runKeyID
	byKey := make(map[runKeyID]RunRecord)
	for _, name := range files {
		recs, _, err := replayJournal(filepath.Join(dir, name), want)
		if err != nil {
			return nil, err
		}
		for _, rec := range recs {
			k := runKeyID{rec.Bench, rec.ConfigHash}
			if _, seen := byKey[k]; !seen {
				order = append(order, k)
			}
			byKey[k] = rec
		}
	}
	merged := make([]RunRecord, 0, len(order))
	for _, k := range order {
		merged = append(merged, byKey[k])
	}
	return merged, nil
}

// acquireLease claims segment id's lease in dir via O_EXCL creation.
// A held lease whose heartbeat is older than ttl is reclaimed with a
// rename-to-claim step so two racing reclaimers cannot both win: the
// rename succeeds for exactly one of them, the other loops and finds
// the winner's fresh lease.
func acquireLease(dir, id string, ttl time.Duration) (*leaseInfo, error) {
	if err := faultinject.PointErr(faultinject.SiteLeaseAcquire); err != nil {
		return nil, fmt.Errorf("journal: acquiring lease for segment %s: %w", id, err)
	}
	path := leasePath(dir, id)
	for tries := 0; tries < 4; tries++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o666)
		if err == nil {
			now := time.Now().Unix()
			info := &leaseInfo{Owner: id, PID: os.Getpid(), AcquiredUnix: now, HeartbeatUnix: now}
			data, merr := json.Marshal(info)
			if merr == nil {
				_, merr = f.Write(data)
			}
			if serr := f.Sync(); merr == nil {
				merr = serr
			}
			if cerr := f.Close(); merr == nil {
				merr = cerr
			}
			if merr != nil {
				os.Remove(path) //md:errok releasing a half-written lease; the write error is the one reported
				return nil, fmt.Errorf("journal: writing lease %s: %w", path, merr)
			}
			return info, nil
		}
		if !os.IsExist(err) {
			return nil, fmt.Errorf("journal: lease %s: %w", path, err)
		}
		// Lease exists: fresh means held, stale (or unparsable — a torn
		// lease write is itself evidence of a dead writer) means reclaim.
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			if os.IsNotExist(rerr) {
				continue // released between our create and read; retry
			}
			return nil, fmt.Errorf("journal: lease %s: %w", path, rerr)
		}
		var held leaseInfo
		var hb time.Time
		if json.Unmarshal(data, &held) == nil && held.HeartbeatUnix > 0 {
			hb = time.Unix(held.HeartbeatUnix, 0)
		}
		if age := time.Since(hb); age <= ttl {
			return nil, &ErrLeaseHeld{Path: path, PID: held.PID, Age: age}
		}
		claim := fmt.Sprintf("%s.reclaim.%d", path, os.Getpid())
		if rerr := os.Rename(path, claim); rerr != nil {
			if os.IsNotExist(rerr) {
				continue // another reclaimer won the rename; retry sees their lease
			}
			return nil, fmt.Errorf("journal: reclaiming stale lease %s: %w", path, rerr)
		}
		if rerr := os.Remove(claim); rerr != nil && !os.IsNotExist(rerr) {
			return nil, fmt.Errorf("journal: removing reclaimed lease %s: %w", claim, rerr)
		}
	}
	return nil, fmt.Errorf("journal: lease %s: could not acquire after repeated reclaim races", path)
}

// BreakLease force-releases segment id's lease in dir. Only a caller
// that has independently confirmed the owner is dead may use it — the
// fleet supervisor calls it after waitpid on a crashed worker, so the
// restarted incarnation reacquires its segment immediately instead of
// waiting out the heartbeat TTL.
func BreakLease(dir, id string) error {
	if err := validSegmentID(id); err != nil {
		return err
	}
	if err := os.Remove(leasePath(dir, id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("journal: breaking lease for segment %s: %w", id, err)
	}
	return nil
}

// Heartbeat refreshes the segment lease's liveness timestamp. Owners
// of a leased segment must call it several times per lease TTL (the
// fleet worker runs it on a ticker); on the legacy unleased journal it
// is a no-op.
func (j *Journal) Heartbeat() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.lease == nil {
		return nil
	}
	j.lease.HeartbeatUnix = time.Now().Unix()
	data, err := json.Marshal(j.lease)
	if err != nil {
		return fmt.Errorf("journal: lease heartbeat: %w", err)
	}
	if err := atomicio.WriteFile(j.leasePath, func(w io.Writer) error {
		_, werr := w.Write(data)
		return werr
	}); err != nil {
		return fmt.Errorf("journal: lease heartbeat: %w", err)
	}
	return nil
}

// openJournalFile opens (or creates) one journal file for appending:
// replay, torn-tail truncation, and fresh-file initialization.
func openJournalFile(path string, want Fingerprint) (*Journal, []RunRecord, error) {
	recs, validLen, err := replayJournal(path, want)
	if err != nil {
		return nil, nil, err
	}
	if validLen >= 0 {
		// Existing journal: drop a torn tail so the append cursor starts
		// on a frame boundary.
		if err := os.Truncate(path, validLen); err != nil {
			return nil, nil, fmt.Errorf("journal: truncating torn tail of %s: %w", path, err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{f: f, path: path}
	if validLen < 0 {
		// Fresh journal: write the magic and the meta fingerprint first,
		// so even an immediately-killed sweep leaves a parsable file.
		if err := j.init(want); err != nil {
			f.Close() //md:errok cleanup on an already-failing open; the init error is the one reported
			return nil, nil, err
		}
	}
	return j, recs, nil
}

// Path returns the journal file's location.
func (j *Journal) Path() string { return j.path }

// init writes the magic line and the meta entry of a fresh journal.
//
//md:nolock single-owner: OpenJournal calls init before the Journal is published to any other goroutine
func (j *Journal) init(meta Fingerprint) error {
	if _, err := j.f.WriteString(journalMagic); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return j.append(journalEntry{Meta: &meta})
}

// Append journals one completed run and fsyncs it, making the cell
// durable against a crash from this point on.
func (j *Journal) Append(rec RunRecord) error {
	return j.append(journalEntry{Run: &rec})
}

func (j *Journal) append(e journalEntry) error {
	if err := faultinject.PointErr(faultinject.SiteJournalAppend); err != nil {
		return fmt.Errorf("journal: append to %s: %w", j.path, err)
	}
	payload, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	var frame bytes.Buffer
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	frame.Write(hdr[:])
	frame.Write(payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	// One Write call per frame: O_APPEND makes the frame a single
	// contiguous region even with concurrent appenders, and the fsync
	// pins it before Append reports the cell durable.
	if _, err := j.f.Write(frame.Bytes()); err != nil {
		return fmt.Errorf("journal: append to %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync %s: %w", j.path, err)
	}
	return nil
}

// Close closes the journal file and, for a leased segment, releases
// the lease so a successor can take the segment over without waiting
// out the TTL.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.f.Close()
	if j.lease != nil {
		j.lease = nil
		if rerr := os.Remove(j.leasePath); rerr != nil && !os.IsNotExist(rerr) && err == nil {
			err = fmt.Errorf("journal: releasing lease %s: %w", j.leasePath, rerr)
		}
	}
	return err
}

// maxJournalEntry bounds one entry's payload; a length prefix beyond it
// is treated as corruption rather than allocated.
const maxJournalEntry = 64 << 20

// replayJournal scans path and returns the deduplicated run records and
// the byte length of the valid prefix. A missing file returns
// validLen = -1 (nothing to truncate, journal needs initialization). A
// torn or corrupt tail ends the scan at the last intact frame — every
// entry before it is replayed, nothing after it is trusted.
func replayJournal(path string, want Fingerprint) ([]RunRecord, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, -1, nil
		}
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	if !bytes.HasPrefix(data, []byte(journalMagic)) {
		return nil, 0, fmt.Errorf("journal: %s is not a runs.journal (bad magic)", path)
	}
	off := int64(len(journalMagic))
	sawMeta := false
	var order []runKeyID
	byKey := make(map[runKeyID]RunRecord)
	for {
		entry, next, ok := readFrame(data, off)
		if !ok {
			break // torn or corrupt tail: valid prefix ends at off
		}
		switch {
		case entry.Meta != nil:
			if *entry.Meta != want {
				return nil, 0, fmt.Errorf(
					"journal: %s was written by %s with insts=%d sampled=%v windows=%d:%d/%d; this sweep runs %s insts=%d sampled=%v windows=%d:%d/%d — use a fresh -resume directory",
					path, entry.Meta.Runner, entry.Meta.Insts, entry.Meta.Sampled,
					entry.Meta.TimingWindow, entry.Meta.FunctionalWindow, entry.Meta.SegmentPeriods,
					want.Runner, want.Insts, want.Sampled,
					want.TimingWindow, want.FunctionalWindow, want.SegmentPeriods)
			}
			sawMeta = true
		case entry.Run != nil && entry.Run.Stats != nil:
			k := runKeyID{entry.Run.Bench, entry.Run.ConfigHash}
			if _, seen := byKey[k]; !seen {
				order = append(order, k)
			}
			byKey[k] = *entry.Run
		}
		off = next
	}
	if !sawMeta {
		if len(byKey) > 0 {
			return nil, 0, fmt.Errorf("journal: %s has run entries but no meta header", path)
		}
		// Magic written but the meta entry itself was torn off: treat as
		// empty and re-initialize from the magic onward.
		return nil, -1, nil
	}
	recs := make([]RunRecord, 0, len(order))
	for _, k := range order {
		recs = append(recs, byKey[k])
	}
	return recs, off, nil
}

// runKeyID keys journal entries the way -resume matches them: by
// benchmark and configuration hash (the meta header already pins the
// runner version and budget for the whole file).
type runKeyID struct {
	bench      string
	configHash string
}

// readFrame decodes the frame at off. ok is false when the remaining
// bytes do not contain one intact, checksum-clean, parsable frame.
func readFrame(data []byte, off int64) (e journalEntry, next int64, ok bool) {
	rest := data[off:]
	if len(rest) < 8 {
		return e, 0, false
	}
	n := int64(binary.BigEndian.Uint32(rest[0:4]))
	sum := binary.BigEndian.Uint32(rest[4:8])
	if n <= 0 || n > maxJournalEntry || int64(len(rest)) < 8+n {
		return e, 0, false
	}
	payload := rest[8 : 8+n]
	if crc32.ChecksumIEEE(payload) != sum {
		return e, 0, false
	}
	if err := json.Unmarshal(payload, &e); err != nil {
		return e, 0, false
	}
	return e, off + 8 + n, true
}
