package experiments

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"mdspec/internal/atomicio"
	"mdspec/internal/faultinject"
)

// The journal is the sweep's write-ahead checkpoint store: every
// completed (benchmark, configuration) simulation is appended to
// <dir>/runs.journal as one length-prefixed, checksummed JSON entry the
// moment it finishes, and `mdexp -resume <dir>` replays the file so
// already-finished cells of a killed sweep are primed into the runner's
// memo cache instead of re-simulated. Because each segment's statistics
// depend only on (recording, config, options) — the determinism
// contract the rest of the repository enforces — a replayed cell is
// bit-identical to re-running it, which makes resume-after-SIGKILL
// equivalent to an uninterrupted sweep.
//
// On-disk format: a magic line, then frames of
//
//	uint32 big-endian payload length
//	uint32 big-endian CRC-32 (IEEE) of the payload
//	payload JSON (one journalEntry)
//
// The first entry is a meta record fingerprinting the options that
// produced the journal (runner version, instruction budget, sampling
// windows); replay refuses a journal written under different options,
// since its cells would not be the cells of this sweep. Appends are
// fsynced entry by entry, so a crash can lose at most the entry being
// written — and a torn tail (truncated frame or checksum mismatch) is
// detected on the next open and truncated away, never parsed into the
// cache.

// journalName is the WAL's filename inside a -resume directory.
const journalName = "runs.journal"

// journalMagic identifies (and versions) the file format.
const journalMagic = "mdspec-journal/1\n"

// Fingerprint identifies the provenance tuple a result cache or
// checkpoint journal is keyed under, beyond the per-cell (benchmark,
// config hash) pair: the runner revision, the instruction budget, and
// the sampling windows. Two sweeps with equal Fingerprints request the
// same cells; mdserve uses it to refuse requests whose cells would not
// be this server's cells, exactly as the journal refuses a foreign
// file.
type Fingerprint struct {
	Runner           string `json:"runner_version"`
	Insts            int64  `json:"insts"`
	Sampled          bool   `json:"sampled"`
	TimingWindow     int64  `json:"timing_window,omitempty"`
	FunctionalWindow int64  `json:"functional_window,omitempty"`
	SegmentPeriods   int    `json:"segment_periods,omitempty"`
	// Phases is the phase cluster count of a PhaseSampled sweep (0 when
	// phase selection is off): phase-weighted cells are not the cells of
	// an exhaustive sampled sweep, so the two must not prime each other.
	Phases int `json:"phases,omitempty"`
}

// Fingerprint derives the provenance fingerprint of the options: the
// journal's meta header and the mdserve request-validation key.
func (opt Options) Fingerprint() Fingerprint {
	m := Fingerprint{Runner: RunnerVersion, Insts: opt.Insts, Sampled: opt.Sampled}
	if opt.Sampled {
		m.TimingWindow = opt.timingWindow()
		m.FunctionalWindow = opt.functionalWindow()
		m.SegmentPeriods = opt.SegmentPeriods
		if opt.PhaseSampled {
			m.Phases = opt.phases()
		}
	}
	return m
}

// journalEntry is one framed record: exactly one of Meta or Run is set.
type journalEntry struct {
	Meta *Fingerprint `json:"meta,omitempty"`
	Run  *RunRecord   `json:"run,omitempty"`
}

// Journal is an append-only, checksummed WAL of completed runs.
// Appends are serialized and fsynced; it is safe for concurrent use by
// a Runner's sweep workers.
type Journal struct {
	mu   sync.Mutex
	f    *os.File //md:guardedby mu
	path string   // immutable after OpenJournal
}

// OpenJournal opens (or creates) the journal in dir for a sweep running
// with opt, and returns the run records replayed from it (deduplicated,
// last entry per (bench, config hash) wins — in practice cells are
// journaled once). A torn tail left by a crash is truncated before the
// journal is reopened for appending. A journal written under different
// options (budget, sampling windows, runner version) is rejected: its
// cells belong to a different sweep.
func OpenJournal(dir string, opt Options) (*Journal, []RunRecord, error) {
	if err := atomicio.ProbeDir(dir); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	path := filepath.Join(dir, journalName)
	want := opt.Fingerprint()

	recs, validLen, err := replayJournal(path, want)
	if err != nil {
		return nil, nil, err
	}
	if validLen >= 0 {
		// Existing journal: drop a torn tail so the append cursor starts
		// on a frame boundary.
		if err := os.Truncate(path, validLen); err != nil {
			return nil, nil, fmt.Errorf("journal: truncating torn tail of %s: %w", path, err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{f: f, path: path}
	if validLen < 0 {
		// Fresh journal: write the magic and the meta fingerprint first,
		// so even an immediately-killed sweep leaves a parsable file.
		if err := j.init(want); err != nil {
			f.Close() //md:errok cleanup on an already-failing open; the init error is the one reported
			return nil, nil, err
		}
	}
	return j, recs, nil
}

// Path returns the journal file's location.
func (j *Journal) Path() string { return j.path }

// init writes the magic line and the meta entry of a fresh journal.
//
//md:nolock single-owner: OpenJournal calls init before the Journal is published to any other goroutine
func (j *Journal) init(meta Fingerprint) error {
	if _, err := j.f.WriteString(journalMagic); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return j.append(journalEntry{Meta: &meta})
}

// Append journals one completed run and fsyncs it, making the cell
// durable against a crash from this point on.
func (j *Journal) Append(rec RunRecord) error {
	return j.append(journalEntry{Run: &rec})
}

func (j *Journal) append(e journalEntry) error {
	if err := faultinject.PointErr(faultinject.SiteJournalAppend); err != nil {
		return fmt.Errorf("journal: append to %s: %w", j.path, err)
	}
	payload, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	var frame bytes.Buffer
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	frame.Write(hdr[:])
	frame.Write(payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	// One Write call per frame: O_APPEND makes the frame a single
	// contiguous region even with concurrent appenders, and the fsync
	// pins it before Append reports the cell durable.
	if _, err := j.f.Write(frame.Bytes()); err != nil {
		return fmt.Errorf("journal: append to %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync %s: %w", j.path, err)
	}
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// maxJournalEntry bounds one entry's payload; a length prefix beyond it
// is treated as corruption rather than allocated.
const maxJournalEntry = 64 << 20

// replayJournal scans path and returns the deduplicated run records and
// the byte length of the valid prefix. A missing file returns
// validLen = -1 (nothing to truncate, journal needs initialization). A
// torn or corrupt tail ends the scan at the last intact frame — every
// entry before it is replayed, nothing after it is trusted.
func replayJournal(path string, want Fingerprint) ([]RunRecord, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, -1, nil
		}
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	if !bytes.HasPrefix(data, []byte(journalMagic)) {
		return nil, 0, fmt.Errorf("journal: %s is not a runs.journal (bad magic)", path)
	}
	off := int64(len(journalMagic))
	sawMeta := false
	var order []runKeyID
	byKey := make(map[runKeyID]RunRecord)
	for {
		entry, next, ok := readFrame(data, off)
		if !ok {
			break // torn or corrupt tail: valid prefix ends at off
		}
		switch {
		case entry.Meta != nil:
			if *entry.Meta != want {
				return nil, 0, fmt.Errorf(
					"journal: %s was written by %s with insts=%d sampled=%v windows=%d:%d/%d; this sweep runs %s insts=%d sampled=%v windows=%d:%d/%d — use a fresh -resume directory",
					path, entry.Meta.Runner, entry.Meta.Insts, entry.Meta.Sampled,
					entry.Meta.TimingWindow, entry.Meta.FunctionalWindow, entry.Meta.SegmentPeriods,
					want.Runner, want.Insts, want.Sampled,
					want.TimingWindow, want.FunctionalWindow, want.SegmentPeriods)
			}
			sawMeta = true
		case entry.Run != nil && entry.Run.Stats != nil:
			k := runKeyID{entry.Run.Bench, entry.Run.ConfigHash}
			if _, seen := byKey[k]; !seen {
				order = append(order, k)
			}
			byKey[k] = *entry.Run
		}
		off = next
	}
	if !sawMeta {
		if len(byKey) > 0 {
			return nil, 0, fmt.Errorf("journal: %s has run entries but no meta header", path)
		}
		// Magic written but the meta entry itself was torn off: treat as
		// empty and re-initialize from the magic onward.
		return nil, -1, nil
	}
	recs := make([]RunRecord, 0, len(order))
	for _, k := range order {
		recs = append(recs, byKey[k])
	}
	return recs, off, nil
}

// runKeyID keys journal entries the way -resume matches them: by
// benchmark and configuration hash (the meta header already pins the
// runner version and budget for the whole file).
type runKeyID struct {
	bench      string
	configHash string
}

// readFrame decodes the frame at off. ok is false when the remaining
// bytes do not contain one intact, checksum-clean, parsable frame.
func readFrame(data []byte, off int64) (e journalEntry, next int64, ok bool) {
	rest := data[off:]
	if len(rest) < 8 {
		return e, 0, false
	}
	n := int64(binary.BigEndian.Uint32(rest[0:4]))
	sum := binary.BigEndian.Uint32(rest[4:8])
	if n <= 0 || n > maxJournalEntry || int64(len(rest)) < 8+n {
		return e, 0, false
	}
	payload := rest[8 : 8+n]
	if crc32.ChecksumIEEE(payload) != sum {
		return e, 0, false
	}
	if err := json.Unmarshal(payload, &e); err != nil {
		return e, 0, false
	}
	return e, off + 8 + n, true
}
