package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"mdspec/internal/config"
	"mdspec/internal/stats"
)

// RunnerVersion identifies the experiment-runner revision inside
// artifacts so downstream diffs can tell schema or semantics changes
// apart from genuine result drift. Bump on any change to the artifact
// schema or to what the runner measures.
const RunnerVersion = "mdspec-runner/4"

// FallbackSerialSampled marks a run whose interval-parallel sampled
// simulation kept failing transiently and was completed by one serial
// sampled pass instead (graceful degradation; see Runner).
const FallbackSerialSampled = "serial-sampled"

// Provenance identifies one simulation well enough to reproduce it:
// which benchmark ran under which configuration (by paper-style name
// and by a hash of every Machine field), at what instruction budget,
// how long it took, and which runner revision produced it.
type Provenance struct {
	Bench       string  `json:"bench"`
	Config      string  `json:"config"`
	ConfigHash  string  `json:"config_hash"`
	Insts       int64   `json:"insts"`
	WallSeconds float64 `json:"wall_seconds"`
	Runner      string  `json:"runner_version"`
}

// RunRecord is one executed simulation: its provenance, the headline
// derived metrics, and the full raw counters.
type RunRecord struct {
	Provenance
	// Attempts is how many simulation attempts the cell consumed
	// (1 = clean first try; omitted for replayed pre-retry records).
	Attempts int `json:"attempts,omitempty"`
	// Fallback names the degraded backend that produced the result, if
	// any (FallbackSerialSampled); empty for the primary engine.
	Fallback    string     `json:"fallback,omitempty"`
	IPC         float64    `json:"ipc"`
	MisspecRate float64    `json:"misspec_rate"`
	Stats       *stats.Run `json:"stats"`
}

// AbandonedCell names one (benchmark, configuration) pair the sweep
// gave up on after exhausting its retry budget and any fallback. It is
// the partial-results envelope's record of exactly what is missing.
type AbandonedCell struct {
	Bench      string `json:"bench"`
	Config     string `json:"config"`
	ConfigHash string `json:"config_hash"`
	Attempts   int    `json:"attempts"`
	Error      string `json:"error"`
}

// NewRunRecord assembles a provenance-carrying record for one run.
func NewRunRecord(bench string, cfg config.Machine, insts int64, wall time.Duration, res *stats.Run) RunRecord {
	return newRunRecord(bench, cfg.Name(), cfg.Hash(), insts, wall, res)
}

// newRunRecord is NewRunRecord for callers that already hold the
// configuration's name and hash (the Runner memoizes both).
func newRunRecord(bench, cfgName, cfgHash string, insts int64, wall time.Duration, res *stats.Run) RunRecord {
	return RunRecord{
		Provenance: Provenance{
			Bench:       bench,
			Config:      cfgName,
			ConfigHash:  cfgHash,
			Insts:       insts,
			WallSeconds: wall.Seconds(),
			Runner:      RunnerVersion,
		},
		IPC:         res.IPC(),
		MisspecRate: res.MisspecRate(),
		Stats:       res,
	}
}

// ExperimentResult is one experiment's typed rows inside a Results
// envelope (Rows marshals to the row struct's JSON form). Error is set
// when the experiment failed and its rows are absent or incomplete —
// the sweep records the failure and moves on to the next experiment.
type ExperimentResult struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Error   string  `json:"error,omitempty"`
	Rows    any     `json:"rows"`
}

// Results is the machine-readable artifact a sweep leaves behind: the
// options it ran with, every experiment's typed rows, every simulation's
// provenance-carrying record, and the runner's metrics.
type Results struct {
	Tool        string             `json:"tool"`
	Runner      string             `json:"runner_version"`
	CreatedAt   time.Time          `json:"created_at"`
	Insts       int64              `json:"insts"`
	Benchmarks  []string           `json:"benchmarks"`
	Experiments []ExperimentResult `json:"experiments"`
	Runs        []RunRecord        `json:"runs"`
	Metrics     Counters           `json:"metrics"`
	// Partial marks an envelope missing results: some experiment failed
	// or some cell was abandoned. Abandoned names every missing cell.
	Partial   bool            `json:"partial,omitempty"`
	Abandoned []AbandonedCell `json:"abandoned,omitempty"`
	// JournalError records a degraded checkpoint journal (the first
	// append that failed). The results themselves are complete — a
	// journal failure costs resumability, not the sweep — but a resume
	// or server restart over this journal will re-simulate the cells
	// that failed to append, so the envelope must not look fully
	// durable when it is not.
	JournalError string `json:"journal_error,omitempty"`
}

// NewResults starts an artifact envelope for the given tool and
// options. Slices start non-nil so an interrupted sweep still
// serializes them as [] rather than null.
func NewResults(tool string, opt Options) *Results {
	return &Results{
		Tool:        tool,
		Runner:      RunnerVersion,
		CreatedAt:   time.Now().UTC(),
		Insts:       opt.Insts,
		Benchmarks:  opt.benchmarks(),
		Experiments: []ExperimentResult{},
		Runs:        []RunRecord{},
	}
}

// AddExperiment appends one experiment's rows and elapsed time.
func (rs *Results) AddExperiment(name string, rows any, d time.Duration) {
	rs.Experiments = append(rs.Experiments, ExperimentResult{
		Name: name, Seconds: d.Seconds(), Rows: rows,
	})
}

// AddFailedExperiment records an experiment that errored out: its rows
// (possibly partial or nil) are kept, the envelope is marked partial,
// and the sweep continues with the next experiment.
func (rs *Results) AddFailedExperiment(name string, rows any, d time.Duration, err error) {
	rs.Experiments = append(rs.Experiments, ExperimentResult{
		Name: name, Seconds: d.Seconds(), Error: err.Error(), Rows: rows,
	})
	rs.Partial = true
}

// Attach copies the runner's per-run records, abandoned cells, journal
// health, and metrics snapshot into the envelope; call it once, after
// the sweep. Any abandoned cell marks the envelope partial.
func (rs *Results) Attach(r *Runner) {
	if recs := r.Records(); recs != nil {
		rs.Runs = recs
	}
	if ab := r.Abandoned(); len(ab) > 0 {
		rs.Abandoned = ab
		rs.Partial = true
	}
	if jerr := r.JournalErr(); jerr != nil {
		rs.JournalError = jerr.Error()
	}
	rs.Metrics = r.Counters()
}

// WriteJSON serializes the envelope as indented JSON.
func (rs *Results) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rs)
}

// csvHeader is the flat per-run schema WriteCSV emits.
var csvHeader = []string{
	"bench", "config", "config_hash", "insts", "wall_seconds",
	"attempts", "fallback",
	"cycles", "committed", "ipc", "misspec_rate", "false_dep_rate",
	"false_dep_latency", "branch_miss_rate", "squashed_insts", "sync_waits",
	"committed_loads", "committed_stores", "forwards", "skipped",
	"dcache_accesses", "dcache_misses", "icache_accesses", "icache_misses",
	"stall_empty", "stall_mem", "stall_exec",
}

// WriteCSV serializes the per-run records as one flat CSV row each,
// carrying the same provenance columns as the JSON form. It is the
// statsguard serialization sink: every exported stats.Run counter must
// appear here, directly or through a derived metric.
//
//md:statssink
func (rs *Results) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, rec := range rs.Runs {
		s := rec.Stats
		row := []string{
			rec.Bench, rec.Config, rec.ConfigHash,
			fmt.Sprintf("%d", rec.Insts),
			fmt.Sprintf("%.6f", rec.WallSeconds),
			fmt.Sprintf("%d", rec.Attempts),
			rec.Fallback,
			fmt.Sprintf("%d", s.Cycles),
			fmt.Sprintf("%d", s.Committed),
			fmt.Sprintf("%.6f", s.IPC()),
			fmt.Sprintf("%.6f", s.MisspecRate()),
			fmt.Sprintf("%.6f", s.FalseDepRate()),
			fmt.Sprintf("%.6f", s.FalseDepLatency()),
			fmt.Sprintf("%.6f", s.BranchMissRate()),
			fmt.Sprintf("%d", s.SquashedInsts),
			fmt.Sprintf("%d", s.SyncWaits),
			fmt.Sprintf("%d", s.CommittedLoads),
			fmt.Sprintf("%d", s.CommittedStores),
			fmt.Sprintf("%d", s.Forwards),
			fmt.Sprintf("%d", s.Skipped),
			fmt.Sprintf("%d", s.DCacheAccesses),
			fmt.Sprintf("%d", s.DCacheMisses),
			fmt.Sprintf("%d", s.ICacheAccesses),
			fmt.Sprintf("%d", s.ICacheMisses),
			fmt.Sprintf("%d", s.StallEmpty),
			fmt.Sprintf("%d", s.StallMem),
			fmt.Sprintf("%d", s.StallExec),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
