package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Progress renders a live single-line sweep status (jobs finished vs
// started, the most recent job, cache hits, elapsed time) by rewriting
// one terminal line on each hook event. Wire it into a Runner via
// Options.Hooks = p.Hooks(), and call Done before printing anything
// else to the same stream.
type Progress struct {
	mu       sync.Mutex
	w        io.Writer
	start    time.Time
	started  int
	finished int
	failed   int
	hits     int
	last     string
	lastLen  int
	done     bool
}

// NewProgress returns a Progress writing to w (normally os.Stderr).
func NewProgress(w io.Writer) *Progress {
	return &Progress{w: w, start: time.Now()}
}

// Hooks returns runner hooks that drive this progress line.
func (p *Progress) Hooks() Hooks {
	return Hooks{
		JobStarted: func(bench, cfg string) {
			p.mu.Lock()
			defer p.mu.Unlock()
			p.started++
			p.last = bench + " " + cfg
			p.render()
		},
		JobFinished: func(bench, cfg string, d time.Duration, err error) {
			p.mu.Lock()
			defer p.mu.Unlock()
			p.finished++
			if err != nil {
				p.failed++
			}
			p.render()
		},
		CacheHit: func(bench, cfg string) {
			p.mu.Lock()
			defer p.mu.Unlock()
			p.hits++
			// Cache hits arrive in bursts from render loops; only repaint
			// when a line is already up to avoid noise before any job runs.
			if p.started > 0 {
				p.render()
			}
		},
	}
}

// render repaints the status line; callers hold p.mu.
func (p *Progress) render() {
	if p.done {
		return
	}
	line := fmt.Sprintf("[%d/%d jobs] %s | cache hits %d | %.1fs",
		p.finished, p.started, p.last, p.hits, time.Since(p.start).Seconds())
	if p.failed > 0 {
		line += fmt.Sprintf(" | %d FAILED", p.failed)
	}
	pad := ""
	if n := p.lastLen - len(line); n > 0 {
		pad = strings.Repeat(" ", n)
	}
	fmt.Fprintf(p.w, "\r%s%s", line, pad)
	p.lastLen = len(line)
}

// Done clears the progress line and stops further rendering.
func (p *Progress) Done() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done {
		return
	}
	p.done = true
	if p.lastLen > 0 {
		fmt.Fprintf(p.w, "\r%s\r", strings.Repeat(" ", p.lastLen))
	}
}
