package experiments

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
	"unicode/utf8"
)

// Progress renders a live sweep status (jobs finished vs started, the
// most recent job, cache hits, elapsed time) from runner hook events.
// On a terminal it rewrites one status line in place; on any other
// writer (a CI log, a pipe, a file) carriage-return rewrites would
// smear every repaint into one unreadable line, so it falls back to
// whole-line updates emitted at most every couple of seconds. Wire it
// into a Runner via Options.Hooks = p.Hooks(), and call Done before
// printing anything else to the same stream.
type Progress struct {
	mu          sync.Mutex
	w           io.Writer // immutable after NewProgress
	start       time.Time // immutable after NewProgress
	interactive bool      // immutable after NewProgress
	// minInterval throttles non-interactive line updates (tests zero it
	// before the Progress is shared, the single-owner phase).
	minInterval time.Duration
	lastPrint   time.Time //md:guardedby mu
	started     int       //md:guardedby mu
	finished    int       //md:guardedby mu
	failed      int       //md:guardedby mu
	hits        int       //md:guardedby mu
	last        string    //md:guardedby mu
	// lastWidth is the rune count of the previously painted line;
	// padding with byte length would miscount any multi-byte output
	// (benchmark or config names are not guaranteed ASCII).
	lastWidth int  //md:guardedby mu
	done      bool //md:guardedby mu
}

// NewProgress returns a Progress writing to w (normally os.Stderr).
// Terminal detection keys off w being a character device; anything
// else gets the periodic whole-line mode.
func NewProgress(w io.Writer) *Progress {
	p := &Progress{w: w, start: time.Now(), minInterval: 2 * time.Second}
	if f, ok := w.(*os.File); ok {
		if fi, err := f.Stat(); err == nil && fi.Mode()&os.ModeCharDevice != 0 {
			p.interactive = true
		}
	}
	return p
}

// Hooks returns runner hooks that drive this progress line.
func (p *Progress) Hooks() Hooks {
	return Hooks{
		JobStarted: func(bench, cfg string) {
			p.mu.Lock()
			defer p.mu.Unlock()
			p.started++
			p.last = bench + " " + cfg
			p.render()
		},
		JobFinished: func(bench, cfg string, d time.Duration, err error) {
			p.mu.Lock()
			defer p.mu.Unlock()
			p.finished++
			if err != nil {
				p.failed++
			}
			p.render()
		},
		CacheHit: func(bench, cfg string) {
			p.mu.Lock()
			defer p.mu.Unlock()
			p.hits++
			// Cache hits arrive in bursts from render loops; only repaint
			// when a line is already up to avoid noise before any job runs.
			if p.started > 0 {
				p.render()
			}
		},
	}
}

// render repaints the status line.
//
//md:locked mu
func (p *Progress) render() {
	if p.done {
		return
	}
	line := fmt.Sprintf("[%d/%d jobs] %s | cache hits %d | %.1fs",
		p.finished, p.started, p.last, p.hits, time.Since(p.start).Seconds())
	if p.failed > 0 {
		line += fmt.Sprintf(" | %d FAILED", p.failed)
	}
	if !p.interactive {
		now := time.Now()
		if !p.lastPrint.IsZero() && now.Sub(p.lastPrint) < p.minInterval {
			return
		}
		p.lastPrint = now
		fmt.Fprintln(p.w, line)
		return
	}
	width := utf8.RuneCountInString(line)
	pad := ""
	if n := p.lastWidth - width; n > 0 {
		pad = strings.Repeat(" ", n)
	}
	fmt.Fprintf(p.w, "\r%s%s", line, pad)
	p.lastWidth = width
}

// Done clears the progress line and stops further rendering.
func (p *Progress) Done() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done {
		return
	}
	p.done = true
	if p.interactive && p.lastWidth > 0 {
		fmt.Fprintf(p.w, "\r%s\r", strings.Repeat(" ", p.lastWidth))
	}
}
