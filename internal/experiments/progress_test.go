package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
	"unicode/utf8"
)

// A non-terminal writer must get newline-terminated whole lines, never
// carriage-return rewrites: \r spam turns a CI log into one mega-line.
func TestProgressNonTerminalUsesNewlines(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf)
	if p.interactive {
		t.Fatal("a bytes.Buffer must not be detected as a terminal")
	}
	p.minInterval = 0 // no throttling: every event prints
	h := p.Hooks()
	h.JobStarted("126.gcc", "NAS/SYNC")
	h.JobFinished("126.gcc", "NAS/SYNC", time.Millisecond, nil)
	p.Done()

	out := buf.String()
	if strings.Contains(out, "\r") {
		t.Errorf("non-terminal progress wrote carriage returns:\n%q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 newline-terminated updates, got %d:\n%q", len(lines), out)
	}
	if !strings.Contains(lines[0], "126.gcc NAS/SYNC") {
		t.Errorf("update line missing job identity: %q", lines[0])
	}
}

// Whole-line updates on a non-terminal are throttled so a render-loop
// burst of hook events does not flood the log.
func TestProgressNonTerminalThrottles(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf)
	p.minInterval = time.Hour
	h := p.Hooks()
	for i := 0; i < 50; i++ {
		h.JobStarted("126.gcc", "NAS/SYNC")
	}
	p.Done()
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Errorf("want 1 throttled update for 50 events, got %d:\n%q", got, buf.String())
	}
}

// Terminal repaints must pad with rune width, not byte length: a
// previous line containing multi-byte runes would otherwise leave the
// cursor mid-line or scatter stray padding.
func TestProgressPadsWithRuneWidth(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf)
	p.interactive = true

	p.mu.Lock()
	p.started = 1
	p.last = "bench-αβγδεζηθικλμν" // multi-byte: rune count < byte count
	p.render()
	p.last = "x"
	p.render()
	p.mu.Unlock()

	chunks := strings.Split(buf.String(), "\r")
	// chunks[0] is empty (output starts with \r); chunks[1] is the long
	// line, chunks[2] the short line plus padding.
	if len(chunks) != 3 {
		t.Fatalf("want 2 repaints, got %d: %q", len(chunks)-1, buf.String())
	}
	long, short := chunks[1], chunks[2]
	if got, want := utf8.RuneCountInString(short), utf8.RuneCountInString(long); got != want {
		t.Errorf("short repaint covers %d columns, previous line had %d (byte-length padding?)\nlong:  %q\nshort: %q",
			got, want, long, short)
	}
}
