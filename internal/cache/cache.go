// Package cache models the paper's lockup-free, banked, set-associative
// cache hierarchy (Table 2) for timing purposes. Caches carry no data —
// values come from the functional emulator — so a cache access is a
// question: "when does this reference complete?" The model accounts for
// hit/miss latency at each level, bank conflicts (one new access per bank
// per cycle), LRU replacement, and MSHR-limited outstanding misses
// (primary misses per bank, secondary misses per primary).
package cache

// Level is anything that can service a memory reference: a cache or main
// memory. Access returns the cycle at which the reference's data is
// available, given that the request arrives at the level at cycle start.
// Warm updates contents and statistics without modeling any timing (for
// the functional windows of sampled simulation).
type Level interface {
	Access(addr uint32, start int64, write bool) (done int64)
	Warm(addr uint32, write bool)
}

// MainMemory is the terminal level: a fixed-latency, infinitely-banked
// backing store (Table 2: "Infinite, 34 cycle + 4-word transfer * 2
// cycles").
type MainMemory struct {
	Latency int64
	// Accesses counts references that reached memory.
	Accesses uint64
}

// Access implements Level.
func (m *MainMemory) Access(addr uint32, start int64, write bool) int64 {
	m.Accesses++
	return start + m.Latency
}

// Warm implements Level (contents-only access).
func (m *MainMemory) Warm(addr uint32, write bool) { m.Accesses++ }

// Config sizes one cache level.
type Config struct {
	Name       string
	SizeBytes  int
	Assoc      int
	BlockBytes int
	Banks      int
	// HitLatency is the added latency of a hit at this level.
	HitLatency int64
	// MissExtra is added on a miss before the next level's time (tag
	// check + miss handling); total miss time = MissExtra + next level.
	MissExtra int64
	// PrimaryMSHRs limits outstanding primary misses per bank;
	// SecondaryPerPrimary limits merged secondary misses per primary.
	// Zero values mean "unlimited".
	PrimaryMSHRs        int
	SecondaryPerPrimary int
	// Perfect makes every access hit in HitLatency with no bank or MSHR
	// constraints (for ablations and pipeline-isolation tests).
	Perfect bool
}

type way struct {
	tag   uint32
	valid bool
	used  int64 // LRU timestamp
	ready int64 // cycle the fill completes; accesses before this merge as secondary misses
}

type mshr struct {
	block      uint32
	ready      int64
	secondarys int
	inUse      bool
}

type bank struct {
	free  int64 // next cycle the bank can accept an access
	mshrs []mshr
}

// Stats holds access counters for one cache.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	MSHRStalls uint64 // accesses delayed by MSHR exhaustion
	BankStalls uint64 // accesses delayed by bank port conflicts
}

// MissRate returns Misses/Accesses.
func (s *Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is one set-associative cache level.
type Cache struct {
	cfg        Config
	next       Level
	sets       [][]way
	banks      []bank
	setsPEBank int
	blockShift uint
	bankMask   uint32
	setMask    uint32
	clock      int64 // monotonically increasing LRU stamp
	Stats      Stats
}

// New builds a cache over next. Sizes must be powers of two.
func New(cfg Config, next Level) *Cache {
	nBlocks := cfg.SizeBytes / cfg.BlockBytes
	nSets := nBlocks / cfg.Assoc
	setsPerBank := nSets / cfg.Banks
	if setsPerBank == 0 {
		setsPerBank = 1
		nSets = cfg.Banks
	}
	c := &Cache{
		cfg:        cfg,
		next:       next,
		sets:       make([][]way, nSets),
		banks:      make([]bank, cfg.Banks),
		setsPEBank: setsPerBank,
		blockShift: log2(uint32(cfg.BlockBytes)),
		bankMask:   uint32(cfg.Banks - 1),
		setMask:    uint32(setsPerBank - 1),
	}
	for i := range c.sets {
		c.sets[i] = make([]way, cfg.Assoc)
	}
	for i := range c.banks {
		if cfg.PrimaryMSHRs > 0 {
			c.banks[i].mshrs = make([]mshr, cfg.PrimaryMSHRs)
		}
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

func log2(v uint32) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

func (c *Cache) blockOf(addr uint32) uint32 { return addr >> c.blockShift }
func (c *Cache) bankOf(block uint32) uint32 { return block & c.bankMask }

// setOf maps a block to its set. Banks are block-interleaved (Table 2),
// and each bank holds its own sets: the low block bits select the bank,
// the bits above them select the set within that bank.
func (c *Cache) setOf(block uint32) uint32 {
	within := (block >> log2(uint32(c.cfg.Banks))) & c.setMask
	return c.bankOf(block)*uint32(c.setsPEBank) + within
}

// lookup returns the way holding block, or nil.
func (c *Cache) lookup(set []way, tag uint32) *way {
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// victim returns an invalid way if one exists, else the LRU way.
func (c *Cache) victim(set []way) *way {
	v := &set[0]
	for i := range set {
		if !set[i].valid {
			return &set[i]
		}
		if set[i].used < v.used {
			v = &set[i]
		}
	}
	return v
}

// Access implements Level. The reference to addr arrives at cycle start;
// the returned cycle is when its data is available (or, for writes, when
// the write is accepted).
func (c *Cache) Access(addr uint32, start int64, write bool) int64 {
	c.Stats.Accesses++
	c.clock++
	if c.cfg.Perfect {
		return start + c.cfg.HitLatency
	}
	block := c.blockOf(addr)
	bk := &c.banks[c.bankOf(block)]

	// One new access per bank per cycle.
	at := start
	if bk.free > at {
		c.Stats.BankStalls++
		at = bk.free
	}
	bk.free = at + 1

	set := c.sets[c.setOf(block)]
	if w := c.lookup(set, block); w != nil {
		w.used = c.clock
		if w.ready > at {
			// The line is still being filled: this is a secondary miss
			// that merges with the outstanding primary (MSHR permitting).
			c.Stats.Misses++
			return c.secondary(bk, block, at, w.ready)
		}
		return at + c.cfg.HitLatency
	}

	// Primary miss: allocate an MSHR (possibly waiting for one), fetch
	// from the next level, and install the line with its fill time.
	c.Stats.Misses++
	done := c.primaryMiss(bk, block, at, write)
	w := c.victim(set)
	w.tag, w.valid, w.used, w.ready = block, true, c.clock, done
	return done
}

// secondary merges a reference to an in-flight block with its primary
// miss, respecting the secondary-per-primary MSHR limit.
func (c *Cache) secondary(bk *bank, block uint32, at, lineReady int64) int64 {
	if bk.mshrs == nil || c.cfg.SecondaryPerPrimary == 0 {
		return lineReady
	}
	for i := range bk.mshrs {
		m := &bk.mshrs[i]
		if m.inUse && m.block == block && m.ready > at {
			if m.secondarys < c.cfg.SecondaryPerPrimary {
				m.secondarys++
				return m.ready
			}
			// Secondary limit reached: the reference retries after the
			// fill and then hits.
			c.Stats.MSHRStalls++
			return m.ready + c.cfg.HitLatency
		}
	}
	return lineReady
}

// primaryMiss allocates a primary MSHR (stalling for the earliest one if
// all are pending) and returns when the block's data is available at this
// level (next-level delivery plus this level's hit latency).
func (c *Cache) primaryMiss(bk *bank, block uint32, at int64, write bool) int64 {
	if bk.mshrs == nil {
		return c.nextLevel(block, at, write) + c.cfg.HitLatency
	}
	var slot *mshr
	for i := range bk.mshrs {
		m := &bk.mshrs[i]
		if !m.inUse || m.ready <= at {
			slot = m
			break
		}
	}
	if slot == nil {
		slot = &bk.mshrs[0]
		for i := 1; i < len(bk.mshrs); i++ {
			if bk.mshrs[i].ready < slot.ready {
				slot = &bk.mshrs[i]
			}
		}
		c.Stats.MSHRStalls++
		at = slot.ready
	}
	done := c.nextLevel(block, at, write) + c.cfg.HitLatency
	*slot = mshr{block: block, ready: done, inUse: true}
	return done
}

func (c *Cache) nextLevel(block uint32, at int64, write bool) int64 {
	return c.next.Access(block<<c.blockShift, at+c.cfg.MissExtra, write)
}

// Warm implements Level: it updates tags, LRU state and hit/miss
// statistics exactly like Access, but touches no bank or MSHR timing, so
// it is safe to replay long instruction streams at a single cycle (the
// functional windows of sampled simulation).
func (c *Cache) Warm(addr uint32, write bool) {
	c.Stats.Accesses++
	c.clock++
	if c.cfg.Perfect {
		return
	}
	block := c.blockOf(addr)
	set := c.sets[c.setOf(block)]
	if w := c.lookup(set, block); w != nil {
		w.used = c.clock
		return
	}
	c.Stats.Misses++
	c.next.Warm(block<<c.blockShift, write)
	w := c.victim(set)
	*w = way{tag: block, valid: true, used: c.clock}
}
