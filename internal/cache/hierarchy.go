package cache

// Hierarchy bundles the paper's Table 2 memory system: split L1
// instruction and data caches over a shared unified L2 over main memory.
type Hierarchy struct {
	I   *Cache
	D   *Cache
	L2  *Cache
	Mem *MainMemory
}

// Table2 builds the default hierarchy:
//
//	I-cache: 64K, 2-way, 8 banks, 32B blocks, 2-cycle hit
//	D-cache: 32K, 2-way, 4 banks, 32B blocks, 2-cycle hit,
//	         8 primary MSHRs/bank, 8 secondary/primary
//	L2:      4M, 2-way, 4 banks, 128B blocks; an L1 miss that hits in L2
//	         costs ~10 cycles total; a miss to main memory ~50 cycles.
func Table2() *Hierarchy {
	mem := &MainMemory{Latency: 40} // 50 total minus the 10 spent reaching/retrying L2
	l2 := New(Config{
		Name: "L2", SizeBytes: 4 << 20, Assoc: 2, BlockBytes: 128, Banks: 4,
		HitLatency: 8, MissExtra: 0,
		PrimaryMSHRs: 4, SecondaryPerPrimary: 3,
	}, mem)
	icache := New(Config{
		Name: "I", SizeBytes: 64 << 10, Assoc: 2, BlockBytes: 32, Banks: 8,
		HitLatency: 2, MissExtra: 0,
		PrimaryMSHRs: 2, SecondaryPerPrimary: 1,
	}, l2)
	dcache := New(Config{
		Name: "D", SizeBytes: 32 << 10, Assoc: 2, BlockBytes: 32, Banks: 4,
		HitLatency: 2, MissExtra: 0,
		PrimaryMSHRs: 8, SecondaryPerPrimary: 8,
	}, l2)
	return &Hierarchy{I: icache, D: dcache, L2: l2, Mem: mem}
}

// Perfect builds a hierarchy where every access hits at L1 latency —
// useful for isolating pipeline effects in tests and ablations.
func Perfect() *Hierarchy {
	mem := &MainMemory{Latency: 0}
	always := func(name string, hit int64) *Cache {
		return New(Config{
			Name: name, SizeBytes: 256, Assoc: 1, BlockBytes: 32, Banks: 1,
			HitLatency: hit, Perfect: true,
		}, mem)
	}
	return &Hierarchy{I: always("I", 2), D: always("D", 2), L2: always("L2", 8), Mem: mem}
}
