package cache

import (
	"testing"
	"testing/quick"
)

// small builds a tiny cache for deterministic tests: 4 sets, 2-way, 32B
// blocks, 1 bank, hit 2, over a 40-cycle memory.
func small(mshrs, secondaries int) (*Cache, *MainMemory) {
	mem := &MainMemory{Latency: 40}
	c := New(Config{
		Name: "T", SizeBytes: 256, Assoc: 2, BlockBytes: 32, Banks: 1,
		HitLatency: 2, PrimaryMSHRs: mshrs, SecondaryPerPrimary: secondaries,
	}, mem)
	return c, mem
}

func TestHitAfterMiss(t *testing.T) {
	c, _ := small(0, 0)
	d1 := c.Access(0x1000, 0, false)
	if d1 != 42 { // 40-cycle memory + 2-cycle hit latency on the fill
		t.Errorf("cold miss done = %d, want 42", d1)
	}
	d2 := c.Access(0x1008, 100, false) // same block
	if d2 != 102 {
		t.Errorf("hit done = %d, want 102", d2)
	}
	if c.Stats.Accesses != 2 || c.Stats.Misses != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestLRUReplacement(t *testing.T) {
	c, _ := small(0, 0)
	// Three blocks mapping to the same set of a 2-way cache: 4 sets, 1
	// bank => set = (addr>>5) & 3. Blocks 0, 4, 8 share set 0.
	a, b2, c3 := uint32(0*32), uint32(4*32), uint32(8*32)
	c.Access(a, 0, false)
	c.Access(b2, 10, false)
	c.Access(a, 20, false)  // touch a: b2 becomes LRU
	c.Access(c3, 30, false) // evicts b2
	missesBefore := c.Stats.Misses
	c.Access(a, 100, false) // still resident
	if c.Stats.Misses != missesBefore {
		t.Error("a should still hit")
	}
	c.Access(b2, 200, false) // was evicted
	if c.Stats.Misses != missesBefore+1 {
		t.Error("b2 should have been evicted")
	}
}

func TestBankConflict(t *testing.T) {
	c, _ := small(0, 0)
	c.Access(0x0, 0, false)
	// Same cycle, same (only) bank: second access starts a cycle later.
	d := c.Access(0x2000, 0, false)
	if d != 43 { // starts a cycle late, then 40 + 2
		t.Errorf("bank-conflicted miss done = %d, want 43", d)
	}
	if c.Stats.BankStalls != 1 {
		t.Errorf("bank stalls = %d, want 1", c.Stats.BankStalls)
	}
}

func TestSecondaryMissMerges(t *testing.T) {
	c, _ := small(4, 4)
	d1 := c.Access(0x1000, 0, false)
	d2 := c.Access(0x1010, 1, false) // same block, while miss outstanding
	if d2 != d1 {
		t.Errorf("secondary miss done = %d, want %d (merged)", d2, d1)
	}
	if c.Stats.Misses != 2 { // primary + merged secondary both count
		t.Errorf("misses = %d, want 2", c.Stats.Misses)
	}
}

func TestSecondaryLimit(t *testing.T) {
	c, _ := small(4, 1)
	d1 := c.Access(0x1000, 0, false)
	c.Access(0x1008, 1, false) // first secondary merges
	d3 := c.Access(0x1010, 2, false)
	if d3 <= d1 {
		t.Errorf("over-limit secondary done = %d, want > %d", d3, d1)
	}
	if c.Stats.MSHRStalls != 1 {
		t.Errorf("mshr stalls = %d, want 1", c.Stats.MSHRStalls)
	}
}

func TestPrimaryMSHRExhaustion(t *testing.T) {
	c, _ := small(1, 0)
	d1 := c.Access(0x0000, 0, false) // bank busy cycle 0
	d2 := c.Access(0x2000, 1, false) // different block, MSHR busy until d1
	if d2 < d1+40 {
		t.Errorf("second miss done = %d, want >= %d", d2, d1+40)
	}
	if c.Stats.MSHRStalls != 1 {
		t.Errorf("mshr stalls = %d, want 1", c.Stats.MSHRStalls)
	}
}

func TestMainMemoryCounts(t *testing.T) {
	mem := &MainMemory{Latency: 7}
	if d := mem.Access(0, 3, false); d != 10 {
		t.Errorf("memory done = %d, want 10", d)
	}
	if mem.Accesses != 1 {
		t.Error("memory should count accesses")
	}
}

func TestTable2Shape(t *testing.T) {
	h := Table2()
	// L1D hit = 2 cycles.
	h.D.Access(0x4000, 0, false) // warm
	if d := h.D.Access(0x4000, 100, false); d != 102 {
		t.Errorf("L1D hit = %d, want 102", d)
	}
	// Force an L1 miss that hits L2: the 32K 2-way 4-bank L1 aliases
	// addresses 64KB apart into one set, so three such blocks overflow
	// its two ways while staying in distinct L2 sets.
	base := uint32(0x10_0000)
	h.D.Access(base, 30000, false)
	h.D.Access(base+64*1024, 30100, false)
	h.D.Access(base+128*1024, 30200, false) // evicts base from L1
	got := h.D.Access(base, 40000, false)   // L1 miss, L2 hit
	if got != 40010 {
		t.Errorf("L1-miss/L2-hit latency = %d, want 10", got-40000)
	}
	// Cold miss all the way to memory ≈ 50 cycles.
	cold := h.D.Access(0x7000_0000, 50000, false)
	if cold-50000 != 50 {
		t.Errorf("miss-to-memory latency = %d, want 50", cold-50000)
	}
	// I-cache miss that hits L2 = 10 cycles.
	h.I.Access(0x40_0000, 60000, false)          // fills L1I and L2
	h.I.Access(0x40_0000+256*1024, 60100, false) // alias set (64K 2-way 8-bank: 256KB apart)
	h.I.Access(0x40_0000+512*1024, 60200, false) // evicts
	gotI := h.I.Access(0x40_0000, 70000, false)
	if gotI != 70010 {
		t.Errorf("I-miss/L2-hit latency = %d, want 10", gotI-70000)
	}
}

func TestPerfectHierarchyAlwaysFast(t *testing.T) {
	h := Perfect()
	for i := uint32(0); i < 100; i++ {
		if d := h.D.Access(i*4096, int64(i*10), false); d != int64(i*10)+2 {
			t.Fatalf("perfect D access %d took %d cycles", i, d-int64(i*10))
		}
	}
}

func TestAccessMonotonicProperty(t *testing.T) {
	// Property: completion time is always strictly after arrival time.
	c, _ := small(2, 2)
	cycle := int64(0)
	f := func(addr uint32, advance uint8) bool {
		cycle += int64(advance)
		done := c.Access(addr, cycle, addr%3 == 0)
		return done > cycle
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestWriteTimingSameAsRead(t *testing.T) {
	c1, _ := small(0, 0)
	c2, _ := small(0, 0)
	r := c1.Access(0x3000, 0, false)
	w := c2.Access(0x3000, 0, true)
	if r != w {
		t.Errorf("write timing %d != read timing %d", w, r)
	}
}

func TestWarmMatchesAccessContents(t *testing.T) {
	// Warming must produce the same hit/miss pattern a timed access
	// stream would, with no bank or MSHR side effects.
	c1, _ := small(2, 2)
	c2, _ := small(2, 2)
	addrs := []uint32{0x0, 0x20, 0x40, 0x0, 0x2000, 0x20, 0x0}
	for i, a := range addrs {
		c1.Access(a, int64(i*100), false)
		c2.Warm(a, false)
	}
	if c1.Stats.Misses != c2.Stats.Misses || c1.Stats.Accesses != c2.Stats.Accesses {
		t.Errorf("warm stats diverge: %+v vs %+v", c1.Stats, c2.Stats)
	}
	// After warming, a timed access to a warmed block hits immediately.
	if d := c2.Access(0x0, 1000, false); d != 1002 {
		t.Errorf("post-warm access = %d, want hit at 1002", d)
	}
	// Warming never advanced the bank clock.
	if c2.Stats.BankStalls != 0 {
		t.Error("warm must not create bank conflicts")
	}
}

func TestWarmOnPerfectCacheIsNoop(t *testing.T) {
	mem := &MainMemory{Latency: 40}
	c := New(Config{Name: "P", SizeBytes: 256, Assoc: 1, BlockBytes: 32, Banks: 1,
		HitLatency: 2, Perfect: true}, mem)
	c.Warm(0x1234, true)
	if c.Stats.Misses != 0 || c.Stats.Accesses != 1 {
		t.Errorf("perfect warm stats: %+v", c.Stats)
	}
}

func TestHierarchySharedL2(t *testing.T) {
	// An I-fetch that fills L2 makes a later D-access to the same line an
	// L2 hit (the unified L2 of Table 2).
	h := Table2()
	h.I.Access(0x50_0000, 0, false) // cold: fills L2 block 0x50_0000
	// Evict nothing; access a D-cache line in the same L2 block.
	d := h.D.Access(0x50_0010, 1000, false)
	if d-1000 != 10 {
		t.Errorf("D access after I fill took %d cycles, want 10 (L2 hit)", d-1000)
	}
}
