package cache

import (
	"encoding/binary"
	"errors"
)

// Warm-state serialization. AppendState flattens everything a functional
// warming pass mutates — tags, valid bits, LRU stamps, the LRU clock and
// the Stats counters — into a little-endian byte stream; RestoreState is
// the exact inverse. Timing-only state (bank ports, MSHRs, fill-ready
// cycles) is always zero after a purely functional pass, so it is omitted
// from the format and zeroed on restore. Restoring a state captured after
// Warm()-ing N references leaves the cache bit-identical to one that
// warmed those N references directly.

// Sentinel decode errors. RestoreState is a hot path (//md:hotpath), so
// failures surface as predeclared values rather than formatted errors.
var (
	// ErrStateTruncated reports a state buffer shorter than its own
	// geometry implies.
	ErrStateTruncated = errors.New("cache: warm state truncated")
	// ErrStateGeometry reports a state captured from a cache with a
	// different set count or associativity.
	ErrStateGeometry = errors.New("cache: warm state geometry mismatch")
)

const (
	wayBytes       = 4 + 1 + 8 // tag, valid, used
	cacheHdrBytes  = 4 + 4 + 8 + 4*8
	mainMemABytes  = 8
	hierarchyCount = 3 // I, D, L2
)

// StateLen returns the exact AppendState footprint of this cache.
func (c *Cache) StateLen() int {
	return cacheHdrBytes + len(c.sets)*c.cfg.Assoc*wayBytes
}

// AppendState appends the cache's warm state to b and returns the
// extended slice.
func (c *Cache) AppendState(b []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(c.sets)))
	b = binary.LittleEndian.AppendUint32(b, uint32(c.cfg.Assoc))
	b = binary.LittleEndian.AppendUint64(b, uint64(c.clock))
	b = binary.LittleEndian.AppendUint64(b, c.Stats.Accesses)
	b = binary.LittleEndian.AppendUint64(b, c.Stats.Misses)
	b = binary.LittleEndian.AppendUint64(b, c.Stats.MSHRStalls)
	b = binary.LittleEndian.AppendUint64(b, c.Stats.BankStalls)
	for _, set := range c.sets {
		for i := range set {
			w := &set[i]
			b = binary.LittleEndian.AppendUint32(b, w.tag)
			if w.valid {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
			b = binary.LittleEndian.AppendUint64(b, uint64(w.used))
		}
	}
	return b
}

// RestoreState overwrites the cache's warm state from the front of b and
// returns the number of bytes consumed. The buffer is validated against
// the cache's geometry before anything is mutated, so a failed restore
// leaves the cache untouched. Timing state (banks, MSHRs, fill-ready
// cycles) is zeroed.
//
//md:hotpath
func (c *Cache) RestoreState(b []byte) (int, error) {
	if len(b) < cacheHdrBytes {
		return 0, ErrStateTruncated
	}
	nSets := binary.LittleEndian.Uint32(b)
	assoc := binary.LittleEndian.Uint32(b[4:])
	if int(nSets) != len(c.sets) || int(assoc) != c.cfg.Assoc {
		return 0, ErrStateGeometry
	}
	total := c.StateLen()
	if len(b) < total {
		return 0, ErrStateTruncated
	}
	c.clock = int64(binary.LittleEndian.Uint64(b[8:]))
	c.Stats.Accesses = binary.LittleEndian.Uint64(b[16:])
	c.Stats.Misses = binary.LittleEndian.Uint64(b[24:])
	c.Stats.MSHRStalls = binary.LittleEndian.Uint64(b[32:])
	c.Stats.BankStalls = binary.LittleEndian.Uint64(b[40:])
	off := cacheHdrBytes
	for _, set := range c.sets {
		for i := range set {
			set[i] = way{
				tag:   binary.LittleEndian.Uint32(b[off:]),
				valid: b[off+4] != 0,
				used:  int64(binary.LittleEndian.Uint64(b[off+5:])),
			}
			off += wayBytes
		}
	}
	for i := range c.banks {
		c.banks[i].free = 0
		for j := range c.banks[i].mshrs {
			c.banks[i].mshrs[j] = mshr{}
		}
	}
	return off, nil
}

// AppendState appends the memory's warm state (its access counter).
func (m *MainMemory) AppendState(b []byte) []byte {
	return binary.LittleEndian.AppendUint64(b, m.Accesses)
}

// RestoreState overwrites the memory's warm state from the front of b.
//
//md:hotpath
func (m *MainMemory) RestoreState(b []byte) (int, error) {
	if len(b) < mainMemABytes {
		return 0, ErrStateTruncated
	}
	m.Accesses = binary.LittleEndian.Uint64(b)
	return mainMemABytes, nil
}

// StateLen returns the exact AppendState footprint of the hierarchy.
func (h *Hierarchy) StateLen() int {
	return h.I.StateLen() + h.D.StateLen() + h.L2.StateLen() + mainMemABytes
}

// AppendState appends the warm state of every level (I, D, L2, memory).
func (h *Hierarchy) AppendState(b []byte) []byte {
	b = h.I.AppendState(b)
	b = h.D.AppendState(b)
	b = h.L2.AppendState(b)
	return h.Mem.AppendState(b)
}

// RestoreState overwrites the warm state of every level from the front
// of b and returns the bytes consumed. On error some levels may already
// be restored; callers treat any error as "discard this machine".
//
//md:hotpath
func (h *Hierarchy) RestoreState(b []byte) (int, error) {
	off := 0
	for _, c := range [hierarchyCount]*Cache{h.I, h.D, h.L2} {
		n, err := c.RestoreState(b[off:])
		if err != nil {
			return off, err
		}
		off += n
	}
	n, err := h.Mem.RestoreState(b[off:])
	return off + n, err
}
