package cache

import (
	"reflect"
	"testing"
)

// xorshift64 gives the tests a deterministic access stream without
// math/rand (the package is under the determinism analyzer).
type xorshift64 uint64

func (x *xorshift64) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift64(v)
	return v
}

func warmStream(h *Hierarchy, n int, seed uint64) {
	rng := xorshift64(seed)
	for i := 0; i < n; i++ {
		v := rng.next()
		addr := uint32(v) & 0xfffff
		if v&(1<<32) != 0 {
			h.D.Warm(addr, v&(1<<33) != 0)
		} else {
			h.I.Warm(addr&^3, false)
		}
	}
}

func TestHierarchyStateRoundTrip(t *testing.T) {
	src := Table2()
	warmStream(src, 20000, 1)

	b := src.AppendState(nil)
	want := cacheHdrBytes*3 +
		(len(src.I.sets)*src.I.cfg.Assoc+
			len(src.D.sets)*src.D.cfg.Assoc+
			len(src.L2.sets)*src.L2.cfg.Assoc)*wayBytes +
		mainMemABytes
	if len(b) != want {
		t.Fatalf("state length = %d, want %d", len(b), want)
	}

	dst := Table2()
	n, err := dst.RestoreState(b)
	if err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if n != len(b) {
		t.Fatalf("RestoreState consumed %d of %d bytes", n, len(b))
	}
	if !reflect.DeepEqual(src, dst) {
		t.Fatal("restored hierarchy differs from source")
	}

	// A restored hierarchy must behave bit-identically from here on,
	// for both further warming and timed accesses.
	warmStream(src, 5000, 2)
	warmStream(dst, 5000, 2)
	for i, addr := range []uint32{0, 32, 64, 4096, 12345, 0xabcd0} {
		a := src.D.Access(addr, int64(i*10), i%2 == 0)
		b := dst.D.Access(addr, int64(i*10), i%2 == 0)
		if a != b {
			t.Fatalf("access %d: done cycle %d != %d", i, a, b)
		}
	}
	if !reflect.DeepEqual(src, dst) {
		t.Fatal("hierarchies diverged after restore")
	}
}

func TestRestoreStateValidatesBeforeMutating(t *testing.T) {
	src := Table2()
	warmStream(src, 1000, 3)
	b := src.I.AppendState(nil)

	fresh := Table2()
	pristine := Table2()

	// Truncated buffer: nothing may change.
	if _, err := fresh.I.RestoreState(b[:len(b)-1]); err != ErrStateTruncated {
		t.Fatalf("truncated restore: err = %v, want ErrStateTruncated", err)
	}
	if _, err := fresh.I.RestoreState(b[:8]); err != ErrStateTruncated {
		t.Fatalf("short-header restore: err = %v, want ErrStateTruncated", err)
	}
	// Geometry mismatch: the I-cache state must not restore into the
	// (differently shaped) D-cache.
	if _, err := fresh.D.RestoreState(b); err != ErrStateGeometry {
		t.Fatalf("geometry mismatch: err = %v, want ErrStateGeometry", err)
	}
	if !reflect.DeepEqual(fresh, pristine) {
		t.Fatal("failed restore mutated the cache")
	}
}

func TestMainMemoryStateRoundTrip(t *testing.T) {
	m := &MainMemory{Latency: 40, Accesses: 12345}
	b := m.AppendState(nil)
	got := &MainMemory{Latency: 40}
	if n, err := got.RestoreState(b); err != nil || n != len(b) {
		t.Fatalf("RestoreState = %d, %v", n, err)
	}
	if got.Accesses != 12345 {
		t.Fatalf("Accesses = %d, want 12345", got.Accesses)
	}
	if _, err := got.RestoreState(b[:4]); err != ErrStateTruncated {
		t.Fatalf("truncated: err = %v, want ErrStateTruncated", err)
	}
}
