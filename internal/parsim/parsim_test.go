package parsim

import (
	"context"
	"math"
	"reflect"
	"testing"

	"mdspec/internal/config"
	"mdspec/internal/core"
	"mdspec/internal/emu"
	"mdspec/internal/workload"
)

var bg = context.Background()

func recordingOf(t testing.TB, bench string) *emu.Recording {
	t.Helper()
	return emu.NewRecording(emu.New(workload.MustBuild(bench)))
}

// TestBitIdenticalAcrossWorkerCounts is the determinism contract: with
// the decomposition fixed by the options, the worker count (and with it
// the scheduling order) must not change a single counter of the merged
// result.
func TestBitIdenticalAcrossWorkerCounts(t *testing.T) {
	rec := recordingOf(t, "129.compress")
	cfg := config.Default128().WithPolicy(config.Sync)
	opt := Options{TotalTiming: 24_000, TimingInsts: 3_000, FunctionalInsts: 6_000, SegmentPeriods: 2}

	var base *reflect.Value
	for _, workers := range []int{1, 2, 8} {
		opt.Workers = workers
		res, err := Run(bg, cfg, rec, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Committed < opt.TotalTiming {
			t.Fatalf("workers=%d: committed %d < budget %d", workers, res.Committed, opt.TotalTiming)
		}
		v := reflect.ValueOf(*res)
		if base == nil {
			base = &v
			continue
		}
		if !reflect.DeepEqual(base.Interface(), v.Interface()) {
			t.Errorf("workers=%d: result differs from workers=1:\n  1: %+v\n  %d: %+v",
				workers, base.Interface(), workers, v.Interface())
		}
	}
}

// TestSchedulingOrderIndependent re-runs the same decomposition several
// times at high worker counts; any dependence on which worker claims
// which segment would show up as run-to-run drift.
func TestSchedulingOrderIndependent(t *testing.T) {
	rec := recordingOf(t, "102.swim")
	cfg := config.Default128().WithPolicy(config.Naive)
	opt := Options{TotalTiming: 18_000, TimingInsts: 2_000, FunctionalInsts: 4_000, SegmentPeriods: 1, Workers: 8}
	first, err := Run(bg, cfg, rec, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Run(bg, cfg, rec, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(*first, *again) {
			t.Fatalf("run %d differs:\nfirst: %+v\nagain: %+v", i, *first, *again)
		}
	}
}

// TestFiniteProgramCovered: a budget far larger than the program must
// cover every instruction exactly once across all segments (committed
// in timing mode or skipped functionally) and stop cleanly.
func TestFiniteProgramCovered(t *testing.T) {
	p := workload.KernelRecurrence(500)
	// Measure the program's dynamic length with a plain full run.
	pl, err := core.New(config.Default128().WithPolicy(config.Naive), emu.NewTrace(emu.New(p)))
	if err != nil {
		t.Fatal(err)
	}
	full, err := pl.Run(1 << 30)
	if err != nil {
		t.Fatal(err)
	}

	rec := emu.NewRecording(emu.New(p))
	res, err := Run(bg, config.Default128().WithPolicy(config.Naive), rec, Options{
		TotalTiming: 1 << 20, TimingInsts: 1_000, FunctionalInsts: 500, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Committed + res.Skipped; got != full.Committed {
		t.Errorf("parallel run covered %d instructions (committed %d + skipped %d), program has %d",
			got, res.Committed, res.Skipped, full.Committed)
	}
}

// TestCanceledContext: a pre-canceled context must fail fast with the
// context error rather than simulate.
func TestCanceledContext(t *testing.T) {
	rec := recordingOf(t, "129.compress")
	ctx, cancel := context.WithCancel(bg)
	cancel()
	_, err := Run(ctx, config.Default128(), rec, Options{
		TotalTiming: 10_000, TimingInsts: 1_000, FunctionalInsts: 2_000,
	})
	if err == nil {
		t.Fatal("want context error, got nil")
	}
}

// TestRejectsBadOptions mirrors the serial entry point's validation.
func TestRejectsBadOptions(t *testing.T) {
	rec := recordingOf(t, "129.compress")
	if _, err := Run(bg, config.Default128(), rec, Options{TotalTiming: 0, TimingInsts: 1}); err == nil {
		t.Error("zero budget should error")
	}
	if _, err := Run(bg, config.Default128(), rec, Options{TotalTiming: 100, TimingInsts: 0}); err == nil {
		t.Error("zero timing window should error")
	}
	split := config.Default128().WithPolicy(config.Naive).WithSplitWindow(4)
	if _, err := Run(bg, split, rec, Options{TotalTiming: 100, TimingInsts: 10, FunctionalInsts: 10}); err == nil {
		t.Error("split-window sampling should error")
	}
}

// TestSharedSemaphoreBudget: with a fully-contended shared semaphore,
// Run must still make progress on the calling goroutine alone and
// return the same result (the budget throttles, never changes, the
// outcome).
func TestSharedSemaphoreBudget(t *testing.T) {
	rec := recordingOf(t, "129.compress")
	cfg := config.Default128().WithPolicy(config.Naive)
	opt := Options{TotalTiming: 12_000, TimingInsts: 2_000, FunctionalInsts: 4_000, SegmentPeriods: 1, Workers: 8}

	free, err := Run(bg, cfg, rec, opt)
	if err != nil {
		t.Fatal(err)
	}

	sem := NewSem(1)
	if err := sem.Acquire(bg); err != nil { // the "job" holds the only token
		t.Fatal(err)
	}
	opt.Sem = sem
	throttled, err := Run(bg, cfg, rec, opt)
	sem.Release()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*free, *throttled) {
		t.Errorf("semaphore throttling changed the result:\nfree: %+v\nthrottled: %+v", *free, *throttled)
	}
}

// TestCalibrationAgainstSerialSampled holds the interval-parallel
// engine's IPC within 2% of serial RunSampled per benchmark at the same
// instruction budget and window sizes: the segments' functional warm-up
// approximates the serial run's accumulated detailed state, so the two
// must agree closely on phase-free workloads.
func TestCalibrationAgainstSerialSampled(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow")
	}
	const total, tw, fw = 24_000, 3_000, 6_000
	cfg := config.Default128().WithPolicy(config.Sync)
	for _, bench := range workload.Names() {
		rec := recordingOf(t, bench)
		serialPl, err := core.New(cfg, rec.NewReplay())
		if err != nil {
			t.Fatal(err)
		}
		serial, err := serialPl.RunSampled(total, tw, fw)
		if err != nil {
			t.Fatalf("%s serial: %v", bench, err)
		}
		par, err := Run(bg, cfg, rec, Options{
			TotalTiming: total, TimingInsts: tw, FunctionalInsts: fw, SegmentPeriods: 2, Workers: 4,
		})
		if err != nil {
			t.Fatalf("%s parallel: %v", bench, err)
		}
		if dev := math.Abs(par.IPC()/serial.IPC() - 1); dev > 0.02 {
			t.Errorf("%s: parallel IPC %.4f vs serial %.4f (%.2f%% off, want <= 2%%)",
				bench, par.IPC(), serial.IPC(), 100*dev)
		}
	}
}
