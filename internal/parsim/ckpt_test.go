package parsim

import (
	"reflect"
	"testing"

	"mdspec/internal/ckpt"
	"mdspec/internal/config"
	"mdspec/internal/emu"
	"mdspec/internal/stats"
)

// buildSet captures the checkpoint schedule matching opt over rec.
func buildSet(t testing.TB, cfg config.Machine, rec *emu.Recording, opt Options) *ckpt.Set {
	t.Helper()
	p := rec.Program()
	seqs := ckpt.Positions(opt.TotalTiming, opt.TimingInsts, opt.FunctionalInsts,
		opt.segmentPeriods(), opt.warmup())
	set, err := ckpt.Build(cfg, rec, emu.ProgramFingerprint(p), seqs)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestCheckpointResumedBitIdentical is the acceptance-criterion test:
// stats from checkpoint-resumed segments must DeepEqual the
// non-checkpointed run for 1, 2, and 8 workers.
func TestCheckpointResumedBitIdentical(t *testing.T) {
	rec := recordingOf(t, "129.compress")
	cfg := config.Default128().WithPolicy(config.Sync)
	opt := Options{TotalTiming: 24_000, TimingInsts: 3_000, FunctionalInsts: 6_000, SegmentPeriods: 2}

	want, err := Run(bg, cfg, rec, opt)
	if err != nil {
		t.Fatal(err)
	}
	set := buildSet(t, cfg, rec, opt)
	if len(set.Frames) == 0 {
		t.Fatal("no checkpoint frames captured")
	}
	for _, workers := range []int{1, 2, 8} {
		o := opt
		o.Workers = workers
		o.Checkpoints = set
		got, err := Run(bg, cfg, rec, o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: checkpoint-resumed stats differ:\nwant %+v\ngot  %+v", workers, want, got)
		}
	}

	// A persisted-and-reopened set must behave the same as the live one.
	path := t.TempDir() + "/c.mdckpt"
	if err := set.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	reopened, err := ckpt.OpenFile(path, set.RecFP, set.WarmHash)
	if err != nil {
		t.Fatal(err)
	}
	o := opt
	o.Workers = 4
	o.Checkpoints = reopened
	got, err := Run(bg, cfg, rec, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("stats resumed from the on-disk set differ from the non-checkpointed run")
	}
}

// TestCheckpointWrongWarmClassIgnored: a set captured under a different
// warm configuration must be dropped, not restored.
func TestCheckpointWrongWarmClassIgnored(t *testing.T) {
	rec := recordingOf(t, "102.swim")
	cfg := config.Default128().WithPolicy(config.Naive)
	opt := Options{TotalTiming: 12_000, TimingInsts: 2_000, FunctionalInsts: 4_000, SegmentPeriods: 1}

	want, err := Run(bg, cfg, rec, opt)
	if err != nil {
		t.Fatal(err)
	}
	otherCfg := cfg
	otherCfg.PerfectCaches = true
	o := opt
	o.Checkpoints = buildSet(t, otherCfg, rec, opt) // wrong warm class
	got, err := Run(bg, cfg, rec, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("mismatched checkpoint set changed the results")
	}
}

// TestPhaseSelect: a weighted selection simulates only the chosen
// segments, scales them, and merges in index order.
func TestPhaseSelect(t *testing.T) {
	rec := recordingOf(t, "129.compress")
	cfg := config.Default128().WithPolicy(config.Naive)
	opt := Options{TotalTiming: 16_000, TimingInsts: 2_000, FunctionalInsts: 4_000, SegmentPeriods: 2}
	// 8 periods → 4 segments.

	// Reference: simulate the two selected segments individually.
	seg1, err := Run(bg, cfg, rec, Options{TotalTiming: opt.TotalTiming, TimingInsts: opt.TimingInsts,
		FunctionalInsts: opt.FunctionalInsts, SegmentPeriods: opt.SegmentPeriods,
		Select: []ckpt.WeightedSegment{{Index: 1, Weight: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	seg3, err := Run(bg, cfg, rec, Options{TotalTiming: opt.TotalTiming, TimingInsts: opt.TimingInsts,
		FunctionalInsts: opt.FunctionalInsts, SegmentPeriods: opt.SegmentPeriods,
		Select: []ckpt.WeightedSegment{{Index: 3, Weight: 1}}})
	if err != nil {
		t.Fatal(err)
	}

	o := opt
	o.Select = []ckpt.WeightedSegment{{Index: 1, Weight: 3}, {Index: 3, Weight: 1}}
	for _, workers := range []int{1, 4} {
		o.Workers = workers
		got, err := Run(bg, cfg, rec, o)
		if err != nil {
			t.Fatal(err)
		}
		want := stats.Merge([]*stats.Run{stats.Scale(seg1, 3), seg3})
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: weighted selection mismatch:\nwant %+v\ngot  %+v", workers, want, got)
		}
		if got.Committed < 4*opt.TimingInsts*opt.TotalTiming/16_000 {
			t.Errorf("workers=%d: implausibly few committed insts %d", workers, got.Committed)
		}
	}

	// Invalid selections are rejected.
	for _, sel := range [][]ckpt.WeightedSegment{
		{{Index: -1, Weight: 1}},
		{{Index: 99, Weight: 1}},
		{{Index: 0, Weight: 0}},
		{{Index: 0, Weight: 1}, {Index: 0, Weight: 2}},
	} {
		o := opt
		o.Select = sel
		if _, err := Run(bg, cfg, rec, o); err == nil {
			t.Errorf("selection %v should be rejected", sel)
		}
	}
}

// TestCheckpointWithPhaseSelect combines both mechanisms, the intended
// production shape: representative segments only, each warm-started.
func TestCheckpointWithPhaseSelect(t *testing.T) {
	rec := recordingOf(t, "102.swim")
	cfg := config.Default128().WithPolicy(config.Sync)
	opt := Options{TotalTiming: 16_000, TimingInsts: 2_000, FunctionalInsts: 4_000, SegmentPeriods: 2}
	sel := []ckpt.WeightedSegment{{Index: 0, Weight: 2}, {Index: 2, Weight: 2}}

	o1 := opt
	o1.Select = sel
	want, err := Run(bg, cfg, rec, o1)
	if err != nil {
		t.Fatal(err)
	}
	o2 := opt
	o2.Select = sel
	o2.Checkpoints = buildSet(t, cfg, rec, opt)
	o2.Workers = 4
	got, err := Run(bg, cfg, rec, o2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("checkpointed phase-selected run differs:\nwant %+v\ngot  %+v", want, got)
	}
}
