// Package parsim shards one sampled simulation across CPU cores. The
// paper's sampled methodology (§3.1) alternates timing windows with
// functional warming; the classic interval-sampling observation is that
// timing windows are independent given functionally-warmed cache and
// branch-predictor state, so the stream can be cut into segments that
// are simulated concurrently and merged in order.
//
// The decomposition is fixed by the options (period size × periods per
// segment), never by the worker count: each segment is simulated on a
// private core.Pipeline over a replay cursor of the shared replay
// source (a live emu.Recording or an mmapped recording file),
// fast-forwarding functionally to its segment start and then running
// the timing/functional alternation within its bounds.
// Every segment's result depends only on the configuration, the
// recording, and the segment bounds, and stats.Merge combines the
// per-segment results in stream order — so the merged Run is
// bit-identical whether 1, 2, or 16 workers ran it, and regardless of
// which worker picked up which segment when.
//
// Concurrency composes with job-level parallelism through a shared Sem:
// the calling goroutine always acts as one worker (so progress never
// depends on spare capacity), and extra workers start only for tokens
// they can take without blocking. An experiment sweep hands every
// parsim.Run the same semaphore it bounds its own jobs with, so
// job-level and intra-job parallelism together never oversubscribe the
// configured budget.
package parsim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"mdspec/internal/ckpt"
	"mdspec/internal/config"
	"mdspec/internal/core"
	"mdspec/internal/emu"
	"mdspec/internal/faultinject"
	"mdspec/internal/stats"
)

// DefaultSegmentPeriods is the default number of sampling periods per
// segment. Larger segments amortize the functional fast-forward to the
// segment start (which grows linearly with the segment's position in
// the stream) over more timing work; smaller segments expose more
// parallelism. Four periods keeps the warm-up overhead at a few percent
// for the suite's default window sizes while still splitting a default
// run into enough segments to feed every core of a large box.
const DefaultSegmentPeriods = 4

// Sem is a counting semaphore shared between job-level sweeps and
// intra-job segment workers, so the two levels of parallelism draw from
// one budget.
type Sem chan struct{}

// NewSem returns a semaphore admitting n concurrent holders.
func NewSem(n int) Sem {
	if n < 1 {
		n = 1
	}
	return make(Sem, n)
}

// Acquire blocks until a token is available or ctx is done.
func (s Sem) Acquire(ctx context.Context) error {
	select {
	case s <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire takes a token only if one is free right now.
func (s Sem) TryAcquire() bool {
	select {
	case s <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a token.
func (s Sem) Release() { <-s }

// Options configures one interval-parallel sampled run.
type Options struct {
	// TotalTiming is the committed-instruction budget summed over all
	// timing windows (the sampled analog of a full run's Insts).
	TotalTiming int64
	// TimingInsts and FunctionalInsts size one sampling period: a timing
	// window of TimingInsts committed instructions followed by
	// FunctionalInsts functionally-warmed ones. The paper's 1:2 ratio is
	// FunctionalInsts = 2*TimingInsts.
	TimingInsts     int64
	FunctionalInsts int64
	// SegmentPeriods is the number of sampling periods per segment
	// (default DefaultSegmentPeriods). It fixes the decomposition — and
	// with it the result — independently of Workers.
	SegmentPeriods int
	// WarmupInsts is the detailed (timing-mode, unmeasured) warm-up each
	// mid-stream segment runs immediately before its first timing window.
	// Functional fast-forward warms caches and the branch predictor but
	// cannot train state that only timing exposes — chiefly the memory
	// dependence predictors, which learn from violations — so without it
	// every segment would start with a cold MDPT and overstate
	// misspeculation. Defaults to TimingInsts (one window's worth, re-run
	// over the tail of the preceding functional region); -1 disables the
	// warm-up entirely. Part of the fixed decomposition: it never varies
	// with the worker count.
	WarmupInsts int64
	// Workers bounds this run's concurrent segment workers (default
	// GOMAXPROCS). The caller's goroutine is always one of them.
	Workers int
	// Sem, when non-nil, is the shared parallelism budget: beyond the
	// calling goroutine (whose admission the caller already arranged),
	// extra workers start only on tokens TryAcquire can take without
	// blocking, so sweeps never oversubscribe their configured budget.
	Sem Sem
	// Checkpoints, when non-nil, lets each segment restore the nearest
	// warm-state frame at or before its warm-up start and fast-forward
	// only the residue, instead of functionally replaying the stream
	// from position 0. Restored state is bit-identical to a live
	// fast-forward, so the option changes wall-clock time only. A set
	// whose WarmHash does not match cfg, or a frame that fails to
	// restore, is silently ignored (full fast-forward) — checkpoints
	// may never change results.
	Checkpoints *ckpt.Set
	// Select, when non-empty, simulates only the named segments of the
	// fixed decomposition, scaling each result by its weight before the
	// in-order merge (phase-aware sampling: one representative segment
	// stands in for its cluster). Indices must be unique and in range,
	// weights positive. An empty Select simulates every segment with
	// weight 1.
	Select []ckpt.WeightedSegment
}

func (o Options) segmentPeriods() int64 {
	if o.SegmentPeriods > 0 {
		return int64(o.SegmentPeriods)
	}
	return DefaultSegmentPeriods
}

func (o Options) warmup() int64 {
	switch {
	case o.WarmupInsts < 0:
		return 0
	case o.WarmupInsts > 0:
		return o.WarmupInsts
	default:
		return o.TimingInsts
	}
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// PanicError is a panic in one segment worker, converted into an error
// carrying the segment's identity and the panicking goroutine's stack.
// The fault stays isolated: the poisoned segment's result slot holds
// this error instead of statistics, so it can never reach the merged
// Run, and the other workers finish their segments normally. The
// robustness layer above (experiments.Runner) treats it as transient
// and retries the whole cell.
type PanicError struct {
	Segment    int   // segment index in stream order
	Start, End int64 // stream bounds [Start, End)
	Value      any   // the recovered panic value
	Stack      []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parsim: panic in segment %d [%d, %d): %v\n%s",
		e.Segment, e.Start, e.End, e.Value, e.Stack)
}

// testSegmentHook, when set (tests only), runs at the start of every
// segment simulation on the claiming worker's goroutine.
var testSegmentHook func(seg int)

// segment is one contiguous stream region [start, end) assigned to a
// worker.
type segment struct {
	start, end int64
}

// segments computes the fixed decomposition of the run: ceil(TotalTiming
// / TimingInsts) sampling periods, grouped SegmentPeriods at a time.
func (o Options) segments() []segment {
	period := o.TimingInsts + o.FunctionalInsts
	nPeriods := (o.TotalTiming + o.TimingInsts - 1) / o.TimingInsts
	perSeg := o.segmentPeriods()
	segs := make([]segment, 0, (nPeriods+perSeg-1)/perSeg)
	for p := int64(0); p < nPeriods; p += perSeg {
		hi := p + perSeg
		if hi > nPeriods {
			hi = nPeriods
		}
		segs = append(segs, segment{start: p * period, end: hi * period})
	}
	return segs
}

// Run executes one sampled simulation of cfg over the recording,
// sharded into segments and merged in stream order. The result is
// deterministic for fixed options: worker count and scheduling change
// only the wall-clock time.
func Run(ctx context.Context, cfg config.Machine, rec emu.ReplaySource, opt Options) (*stats.Run, error) {
	if opt.TotalTiming <= 0 {
		return nil, fmt.Errorf("parsim: invalid timing budget %d", opt.TotalTiming)
	}
	if opt.TimingInsts <= 0 || opt.FunctionalInsts < 0 {
		return nil, fmt.Errorf("parsim: invalid sampling windows %d:%d", opt.TimingInsts, opt.FunctionalInsts)
	}
	segs := opt.segments()
	// Weight of each segment in the merge: 1 everywhere by default, or
	// the phase plan's cluster populations with unselected segments at 0
	// (skipped entirely).
	weights := make([]int64, len(segs))
	if len(opt.Select) == 0 {
		for i := range weights {
			weights[i] = 1
		}
	} else {
		for _, ws := range opt.Select {
			if ws.Index < 0 || ws.Index >= len(segs) {
				return nil, fmt.Errorf("parsim: selected segment %d out of range [0, %d)", ws.Index, len(segs))
			}
			if ws.Weight <= 0 {
				return nil, fmt.Errorf("parsim: segment %d has non-positive weight %d", ws.Index, ws.Weight)
			}
			if weights[ws.Index] != 0 {
				return nil, fmt.Errorf("parsim: segment %d selected twice", ws.Index)
			}
			weights[ws.Index] = ws.Weight
		}
	}
	work := make([]int, 0, len(segs))
	for i := range segs {
		if weights[i] > 0 {
			work = append(work, i)
		}
	}
	// A checkpoint set captured under a different warm configuration
	// would restore the wrong cache/predictor geometry; drop it rather
	// than let it near the results. (Recording identity was verified
	// when the set was opened/built by the caller.)
	if opt.Checkpoints != nil && opt.Checkpoints.WarmHash != ckpt.WarmConfigOf(cfg).Hash() {
		opt.Checkpoints = nil
	}

	results := make([]*stats.Run, len(segs))
	errs := make([]error, len(segs))

	var next atomic.Int64
	worker := func() {
		for {
			n := int(next.Add(1) - 1)
			if n >= len(work) {
				return
			}
			// Claim segments in descending stream order: a segment's
			// functional fast-forward cost grows with its start position,
			// so the expensive late segments go first and the cheap early
			// ones fill the schedule's tail. The claim order changes only
			// wall-clock time — results are merged by segment index.
			i := work[len(work)-1-n]
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			results[i], errs[i] = runSegment(ctx, cfg, rec, i, segs[i], opt)
			if w := weights[i]; w > 1 {
				results[i] = stats.Scale(results[i], w)
			}
		}
	}

	var wg sync.WaitGroup
	for w := 1; w < opt.workers(); w++ {
		if opt.Sem != nil && !opt.Sem.TryAcquire() {
			break // no spare budget: the remaining segments run inline
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if opt.Sem != nil {
				defer opt.Sem.Release()
			}
			worker()
		}()
	}
	worker() // the calling goroutine is always one worker
	wg.Wait()

	var failures []error
	canceled := false
	for i, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			canceled = true
		default:
			failures = append(failures, fmt.Errorf("segment %d [%d, %d): %w", i, segs[i].start, segs[i].end, err))
		}
	}
	if canceled {
		failures = append(failures, ctx.Err())
	}
	if len(failures) > 0 {
		return nil, errors.Join(failures...)
	}
	return stats.Merge(results), nil
}

// runSegment simulates one segment on a private pipeline over a fresh
// replay cursor of the shared recording. A panic anywhere in the
// segment's simulation is recovered into a *PanicError naming the
// segment, so one poisoned segment fails its own result slot instead of
// killing the worker pool (and with it the whole sweep).
func runSegment(ctx context.Context, cfg config.Machine, rec emu.ReplaySource, i int, s segment, opt Options) (res *stats.Run, err error) {
	defer func() {
		if v := recover(); v != nil {
			res = nil
			err = &PanicError{Segment: i, Start: s.start, End: s.end, Value: v, Stack: debug.Stack()}
		}
	}()
	// No-ops unless armed: the fault-injection passage (mdfault builds)
	// and the test-only segment hook.
	faultinject.Point(faultinject.SiteParsimSegment)
	if testSegmentHook != nil {
		testSegmentHook(i)
	}
	if err := ctx.Err(); err != nil {
		return nil, err // canceled while this worker held the segment
	}
	pl, err := core.New(cfg, rec.NewReplay())
	if err != nil {
		return nil, err
	}
	if cs := opt.Checkpoints; cs != nil {
		target := s.start - opt.warmup()
		if target < 0 {
			target = 0
		}
		if f := cs.Nearest(target); f != nil {
			if restoreErr := pl.RestoreWarm(f.State); restoreErr != nil {
				// A failed restore may have left partial state behind;
				// rebuild the machine and fall back to the full
				// functional fast-forward. Slower, never wrong.
				if pl, err = core.New(cfg, rec.NewReplay()); err != nil {
					return nil, err
				}
			}
		}
	}
	return pl.RunSampledInterval(s.start, s.end, opt.TimingInsts, opt.FunctionalInsts, opt.warmup())
}
