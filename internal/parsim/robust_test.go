package parsim

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"mdspec/internal/config"
)

// TestSegmentPanicIsolated: a panic inside one segment worker must
// surface as a typed *PanicError naming that segment — not kill the
// process, and not leak a partial segment into a merged result — and
// the recording must stay reusable: a clean re-run afterwards produces
// exactly the reference statistics.
func TestSegmentPanicIsolated(t *testing.T) {
	rec := recordingOf(t, "129.compress")
	cfg := config.Default128().WithPolicy(config.Sync)
	opt := Options{TotalTiming: 12_000, TimingInsts: 2_000, FunctionalInsts: 4_000, SegmentPeriods: 1, Workers: 4}

	ref, err := Run(bg, cfg, rec, opt)
	if err != nil {
		t.Fatal(err)
	}

	const poisoned = 2
	testSegmentHook = func(seg int) {
		if seg == poisoned {
			panic("poisoned segment")
		}
	}
	defer func() { testSegmentHook = nil }()

	res, err := Run(bg, cfg, rec, opt)
	if res != nil {
		t.Fatal("poisoned run returned a merged result; partial stats must be discarded")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Segment != poisoned || pe.Value != "poisoned segment" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = segment %d value %v stack %d bytes, want segment %d with stack",
			pe.Segment, pe.Value, len(pe.Stack), poisoned)
	}

	testSegmentHook = nil
	again, err := Run(bg, cfg, rec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*ref, *again) {
		t.Errorf("run after a poisoned run differs from the reference:\nref:   %+v\nagain: %+v", *ref, *again)
	}
}

// TestCancelMidFlight cancels the context from inside a segment worker
// while the other workers are mid-warm-up. Run must return the context
// error with no merged result, every shared-semaphore token must be
// back (drained-semaphore check), and no worker goroutine may outlive
// the call.
func TestCancelMidFlight(t *testing.T) {
	rec := recordingOf(t, "102.swim")
	cfg := config.Default128().WithPolicy(config.Naive)
	sem := NewSem(3)
	opt := Options{
		TotalTiming: 24_000, TimingInsts: 2_000, FunctionalInsts: 4_000,
		SegmentPeriods: 1, Workers: 4, Sem: sem,
	}

	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	var claims atomic.Int64
	testSegmentHook = func(seg int) {
		if claims.Add(1) == 3 { // third claim: the other workers are inside segments
			cancel()
		}
	}
	defer func() { testSegmentHook = nil }()

	before := runtime.NumGoroutine()
	res, err := Run(ctx, cfg, rec, opt)
	if res != nil {
		t.Fatal("canceled run returned a merged result; partial stats must be discarded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := len(sem); n != 0 {
		t.Errorf("shared semaphore holds %d leaked tokens after cancellation", n)
	}
	// Worker goroutines are joined before Run returns; give the runtime
	// a moment to reap exited goroutines before comparing.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked across a canceled Run: %d before, %d after", before, after)
	}
}
