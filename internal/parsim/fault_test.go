//go:build mdfault

package parsim

import (
	"errors"
	"reflect"
	"testing"

	"mdspec/internal/config"
	"mdspec/internal/faultinject"
)

// TestInjectedSegmentPanic proves the seeded panic-at-Nth-segment
// injection point fires inside the worker's recovery scope: the fault
// surfaces as a *PanicError wrapping the injected value, the merged
// stats are withheld, and a re-run after the one-shot plan has fired is
// bit-identical to an uninterrupted reference run.
func TestInjectedSegmentPanic(t *testing.T) {
	rec := recordingOf(t, "129.compress")
	cfg := config.Default128().WithPolicy(config.Sync)
	opt := Options{TotalTiming: 12_000, TimingInsts: 2_000, FunctionalInsts: 4_000, SegmentPeriods: 1, Workers: 4}

	ref, err := Run(bg, cfg, rec, opt)
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Arm(faultinject.Plan{
		Site: faultinject.SiteParsimSegment, N: 3, Kind: faultinject.KindPanic,
	})
	defer faultinject.Disarm()

	res, err := Run(bg, cfg, rec, opt)
	if res != nil {
		t.Fatal("poisoned run returned merged stats")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if _, ok := pe.Value.(*faultinject.InjectedPanic); !ok {
		t.Errorf("PanicError.Value = %T, want *faultinject.InjectedPanic", pe.Value)
	}

	// Plan fired once; the retry is clean and must match the reference.
	again, err := Run(bg, cfg, rec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*ref, *again) {
		t.Errorf("retry after injected panic differs from reference:\nref:   %+v\nagain: %+v", *ref, *again)
	}
}
