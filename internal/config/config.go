// Package config defines the simulated machine configurations and the
// A/B naming scheme of the paper's §3: whether an address-based scheduler
// is present (AS vs NAS) and which memory dependence speculation policy
// guides load execution.
package config

import (
	"fmt"
	"hash/fnv"
	"strings"

	"mdspec/internal/bpred"
	"mdspec/internal/mdp"
)

// Policy is the memory dependence speculation policy (the "B" in the
// paper's A/B configuration names).
type Policy int

// Policies from §2.1, plus the store-set extension.
const (
	// NoSpec: loads wait until all their ambiguous dependences resolve.
	NoSpec Policy = iota
	// Naive: loads access memory as soon as their address is ready.
	Naive
	// Selective: predicted-dependent loads are not speculated.
	Selective
	// StoreBarrier: loads after a predicted-dependent store all wait.
	StoreBarrier
	// Sync: speculation/synchronization via the MDPT.
	Sync
	// Oracle: perfect a-priori knowledge of all memory dependences.
	Oracle
	// StoreSets: Chrysos & Emer store-set synchronization (extension).
	StoreSets
)

var policyNames = map[Policy]string{
	NoSpec: "NO", Naive: "NAV", Selective: "SEL", StoreBarrier: "STORE",
	Sync: "SYNC", Oracle: "ORACLE", StoreSets: "SSET",
}

// String returns the paper's abbreviation (NO, NAV, SEL, STORE, SYNC,
// ORACLE) or SSET for the store-set extension.
func (p Policy) String() string {
	if s, ok := policyNames[p]; ok {
		return s
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy converts a paper-style abbreviation into a Policy.
func ParsePolicy(s string) (Policy, error) {
	for p, name := range policyNames {
		if strings.EqualFold(s, name) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("config: unknown policy %q", s)
}

// Recovery selects the misspeculation recovery mechanism (§2 of the
// paper).
type Recovery int

// Recovery mechanisms.
const (
	// RecoverySquash is squash invalidation: the misspeculated load and
	// every younger instruction are discarded and re-fetched (the
	// hardware mechanism "used today" per the paper).
	RecoverySquash Recovery = iota
	// RecoverySelective is selective invalidation (the paper's [16]
	// reference): only the misspeculated load and the instructions that
	// consumed erroneous data re-execute; independent younger work is
	// preserved.
	RecoverySelective
)

// String names the recovery mechanism.
func (r Recovery) String() string {
	if r == RecoverySelective {
		return "selinv"
	}
	return "squash"
}

// Machine describes the simulated processor. The zero value is invalid;
// start from Default128 or Small64.
type Machine struct {
	// Window is the reorder buffer (RUU) size in entries. The LSQ and
	// store buffer are the same size (Table 2: 128-entry each).
	Window int
	// FetchWidth, IssueWidth and CommitWidth are per-cycle limits.
	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	// BranchesPerCycle caps predictions consumed by fetch in one cycle.
	BranchesPerCycle int
	// FrontEndDepth is the fetch-to-dispatch latency in cycles
	// (Table 2: "a combined 4 cycles ... to be fetched and placed into
	// the reorder buffer").
	FrontEndDepth int
	// MemPorts is the number of load/store ports to the D-cache.
	MemPorts int
	// LSQSize bounds the in-flight loads+stores (the combined load/store
	// queue of Table 2); 0 means "as large as the window" (the paper's
	// configuration: both are 128 entries).
	LSQSize int
	// IntALUs, IntMulDivs, FPUnits are functional-unit pool sizes (all
	// fully pipelined).
	IntALUs    int
	IntMulDivs int
	FPUnits    int

	// UseAddressScheduler selects AS (true) vs NAS (false) configurations.
	UseAddressScheduler bool
	// SchedulerLatency is the extra latency (cycles) the address-based
	// scheduler adds to each load memory issue (Figure 3 sweeps 0..2).
	SchedulerLatency int

	// Policy is the memory dependence speculation policy.
	Policy Policy
	// PredictorTable sizes the SEL/STORE/SYNC/SSET predictor tables.
	PredictorTable mdp.TableConfig
	// BranchPredictor selects the direction predictor (default: the
	// paper's McFarling combined predictor).
	BranchPredictor bpred.Kind

	// SquashOverhead is the fixed pipeline-refill penalty, in cycles,
	// charged when a memory-order violation squashes (on top of the
	// re-fetch/re-execute cost that emerges naturally).
	SquashOverhead int
	// Recovery selects squash vs selective invalidation on violations.
	Recovery Recovery
	// PerfectCaches replaces the Table 2 hierarchy with always-hit
	// caches (ablations/tests).
	PerfectCaches bool
	// WrongPathFetch models wrong-path instruction fetch during branch
	// misprediction stalls: the front end keeps fetching sequentially
	// from the (wrong) predicted target, polluting the I-cache and L2,
	// until the branch resolves. Off by default (the base model treats
	// misprediction as a pure fetch bubble).
	WrongPathFetch bool

	// SplitWindow enables the distributed, split-window model of §3.7
	// with SplitUnits sub-windows.
	SplitWindow bool
	SplitUnits  int
}

// Name returns the paper-style configuration name, e.g. "NAS/SYNC" or
// "AS/NAV+1".
func (m Machine) Name() string {
	a := "NAS"
	if m.UseAddressScheduler {
		a = "AS"
	}
	n := a + "/" + m.Policy.String()
	if m.UseAddressScheduler && m.SchedulerLatency > 0 {
		n += fmt.Sprintf("+%d", m.SchedulerLatency)
	}
	if m.Recovery == RecoverySelective {
		n += "/selinv"
	}
	if m.SplitWindow {
		n = "SPLIT:" + n
	}
	return n
}

// Hash returns a stable 64-bit hex digest over every Machine field.
// Two configurations hash equal iff they are identical, so artifacts
// can carry configuration identity beyond the (lossy) paper-style Name:
// e.g. MDPT-size ablation variants all render as "NAS/SYNC" but hash
// differently.
func (m Machine) Hash() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%#v", m)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Default128 is the paper's Table 2 machine: 128-entry window, 8-wide,
// 4 memory ports, 8 copies of all functional units.
func Default128() Machine {
	return Machine{
		Window:           128,
		FetchWidth:       8,
		IssueWidth:       8,
		CommitWidth:      8,
		BranchesPerCycle: 4,
		FrontEndDepth:    4,
		MemPorts:         4,
		IntALUs:          8,
		IntMulDivs:       8,
		FPUnits:          8,
		Policy:           NoSpec,
		PredictorTable:   mdp.DefaultTable(),
		SquashOverhead:   6,
	}
}

// Small64 is the 64-entry variant of §3.2: issue width 4, 2 memory
// ports, 2 copies of each functional unit.
func Small64() Machine {
	m := Default128()
	m.Window = 64
	m.IssueWidth = 4
	m.MemPorts = 2
	m.IntALUs = 2
	m.IntMulDivs = 2
	m.FPUnits = 2
	return m
}

// WithPolicy returns a copy of m with the policy set.
func (m Machine) WithPolicy(p Policy) Machine {
	m.Policy = p
	return m
}

// WithAddressScheduler returns a copy of m with the address-based
// scheduler enabled at the given latency.
func (m Machine) WithAddressScheduler(latency int) Machine {
	m.UseAddressScheduler = true
	m.SchedulerLatency = latency
	return m
}

// WithSplitWindow returns a copy of m using the split-window model with
// the given number of units.
func (m Machine) WithSplitWindow(units int) Machine {
	m.SplitWindow = true
	m.SplitUnits = units
	return m
}

// Validate reports configuration errors.
func (m Machine) Validate() error {
	switch {
	case m.Window <= 0:
		return fmt.Errorf("config: window must be positive")
	case m.FetchWidth <= 0 || m.IssueWidth <= 0 || m.CommitWidth <= 0:
		return fmt.Errorf("config: widths must be positive")
	case m.MemPorts <= 0:
		return fmt.Errorf("config: need at least one memory port")
	case m.IntALUs <= 0 || m.FPUnits <= 0 || m.IntMulDivs <= 0:
		return fmt.Errorf("config: need at least one of each functional unit")
	case m.SchedulerLatency < 0:
		return fmt.Errorf("config: scheduler latency cannot be negative")
	case m.LSQSize < 0:
		return fmt.Errorf("config: LSQ size cannot be negative")
	case m.SplitWindow && (m.SplitUnits < 2 || m.Window%m.SplitUnits != 0):
		return fmt.Errorf("config: split window needs >= 2 units evenly dividing the window")
	case m.UseAddressScheduler && m.Policy != NoSpec && m.Policy != Naive:
		return fmt.Errorf("config: AS configurations support only NO and NAV policies (paper §3.4)")
	case m.Recovery == RecoverySelective && m.UseAddressScheduler:
		return fmt.Errorf("config: selective invalidation applies to NAS configurations (AS corrects loads in place)")
	}
	return nil
}

// WithRecovery returns a copy of m with the recovery mechanism set.
func (m Machine) WithRecovery(r Recovery) Machine {
	m.Recovery = r
	return m
}
