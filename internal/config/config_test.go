package config

import "testing"

func TestPolicyNamesRoundTrip(t *testing.T) {
	for _, p := range []Policy{NoSpec, Naive, Selective, StoreBarrier, Sync, Oracle, StoreSets} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("round trip failed for %v: %v, %v", p, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy should reject unknown names")
	}
	// Case-insensitive, as users type on the CLI.
	if p, err := ParsePolicy("sync"); err != nil || p != Sync {
		t.Error("ParsePolicy should be case-insensitive")
	}
}

func TestConfigNames(t *testing.T) {
	cases := []struct {
		cfg  Machine
		want string
	}{
		{Default128().WithPolicy(NoSpec), "NAS/NO"},
		{Default128().WithPolicy(Sync), "NAS/SYNC"},
		{Default128().WithPolicy(Naive).WithAddressScheduler(0), "AS/NAV"},
		{Default128().WithPolicy(Naive).WithAddressScheduler(2), "AS/NAV+2"},
		{Default128().WithPolicy(Naive).WithSplitWindow(4), "SPLIT:NAS/NAV"},
	}
	for _, c := range cases {
		if got := c.cfg.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

func TestMachineHash(t *testing.T) {
	a := Default128().WithPolicy(Sync)
	b := Default128().WithPolicy(Sync)
	if a.Hash() != b.Hash() {
		t.Error("identical configs must hash equal")
	}
	if len(a.Hash()) != 16 {
		t.Errorf("hash %q should be 16 hex chars", a.Hash())
	}
	// Name() is lossy (both of these render as "NAS/SYNC"); the hash
	// must still distinguish them.
	c := Default128().WithPolicy(Sync)
	c.PredictorTable.Entries *= 2
	if a.Name() != c.Name() {
		t.Fatalf("test premise broken: names differ (%q vs %q)", a.Name(), c.Name())
	}
	if a.Hash() == c.Hash() {
		t.Error("configs differing only in MDPT size must hash differently")
	}
	if a.Hash() == Default128().WithPolicy(Naive).Hash() {
		t.Error("different policies must hash differently")
	}
}

func TestDefault128MatchesTable2(t *testing.T) {
	m := Default128()
	if m.Window != 128 || m.FetchWidth != 8 || m.IssueWidth != 8 ||
		m.MemPorts != 4 || m.BranchesPerCycle != 4 || m.FrontEndDepth != 4 {
		t.Errorf("Default128 deviates from Table 2: %+v", m)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("default must validate: %v", err)
	}
}

func TestSmall64Matches32Section(t *testing.T) {
	m := Small64()
	if m.Window != 64 || m.IssueWidth != 4 || m.MemPorts != 2 || m.IntALUs != 2 {
		t.Errorf("Small64 deviates from §3.2's description: %+v", m)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("small machine must validate: %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := func(mut func(*Machine)) Machine {
		m := Default128()
		mut(&m)
		return m
	}
	cases := []Machine{
		bad(func(m *Machine) { m.Window = 0 }),
		bad(func(m *Machine) { m.IssueWidth = 0 }),
		bad(func(m *Machine) { m.MemPorts = 0 }),
		bad(func(m *Machine) { m.FPUnits = 0 }),
		bad(func(m *Machine) { m.SchedulerLatency = -1 }),
		Default128().WithSplitWindow(1),
		Default128().WithSplitWindow(3), // does not divide 128
		Default128().WithPolicy(Sync).WithAddressScheduler(0),
	}
	for i, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d should fail validation: %+v", i, m)
		}
	}
}

func TestWithHelpersDoNotMutate(t *testing.T) {
	base := Default128()
	_ = base.WithPolicy(Sync)
	_ = base.WithAddressScheduler(2)
	_ = base.WithSplitWindow(4)
	if base.Policy != NoSpec || base.UseAddressScheduler || base.SplitWindow {
		t.Error("With* helpers must return copies")
	}
}
