module mdspec

go 1.22
