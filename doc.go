// Package mdspec reproduces "Memory Dependence Speculation Tradeoffs in
// Centralized, Continuous-Window Superscalar Processors" (Moshovos &
// Sohi, HPCA 2000) as a self-contained Go library: a cycle-level
// out-of-order superscalar timing model with every load/store scheduling
// policy the paper studies, the memory dependence prediction hardware,
// a split-window processor variant, a synthetic SPEC'95-analog workload
// suite, and an experiment harness that regenerates every table and
// figure of the paper's evaluation.
//
// Layout:
//
//	internal/isa         mini-RISC instruction set
//	internal/prog        programs + assembler/builder
//	internal/emu         functional emulator and dynamic traces
//	internal/workload    the 18 Table 1 benchmark analogs + kernels
//	internal/bpred       McFarling combined branch predictor, BTB, RAS
//	internal/cache       banked, lockup-free cache hierarchy (Table 2)
//	internal/mdp         dependence predictors: MDPT, selective, store
//	                     barrier, store sets
//	internal/core        the out-of-order pipeline (continuous + split)
//	internal/config      machine configurations and policy names
//	internal/stats       run statistics and aggregation
//	internal/experiments figures/tables of §3, §4 summary, ablations
//	cmd/mdsim            run one (workload, config) simulation
//	cmd/mdexp            regenerate a table/figure
//	cmd/mdtrace          inspect workload mixes and traces
//
// Five runnable examples live under examples/ (quickstart, recurrence,
// policysweep, predictors, cpistack). The benchmarks in bench_test.go
// regenerate each experiment at a small instruction budget and report
// its headline numbers as custom metrics.
package mdspec
