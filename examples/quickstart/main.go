// Quickstart: build one synthetic benchmark, simulate it under two
// load/store policies, and print the comparison — the smallest useful
// program against the library's public surface.
package main

import (
	"fmt"
	"log"

	"mdspec/internal/config"
	"mdspec/internal/core"
	"mdspec/internal/emu"
	"mdspec/internal/workload"
)

func main() {
	// 1. Build a workload: the gcc analog from the paper's Table 1.
	program, err := workload.Build("126.gcc")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Pick two machine configurations from the paper's design space:
	//    no speculation at all, and speculation/synchronization.
	baseline := config.Default128().WithPolicy(config.NoSpec)
	sync := config.Default128().WithPolicy(config.Sync)

	// 3. Simulate 100k committed instructions under each.
	for _, cfg := range []config.Machine{baseline, sync} {
		pipe, err := core.New(cfg, emu.NewTrace(emu.New(program)))
		if err != nil {
			log.Fatal(err)
		}
		res, err := pipe.Run(100_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s IPC %.3f  (misspeculations %.3f%% of loads, %d store-buffer forwards)\n",
			cfg.Name(), res.IPC(), 100*res.MisspecRate(), res.Forwards)
	}
}
