// Policysweep runs the full A/B design space of the paper over a chosen
// benchmark and ranks the configurations — the "which mechanism should I
// build?" view a microarchitect would want.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"mdspec/internal/config"
	"mdspec/internal/core"
	"mdspec/internal/emu"
	"mdspec/internal/stats"
	"mdspec/internal/workload"
)

func main() {
	bench := flag.String("bench", "147.vortex", "benchmark to sweep")
	n := flag.Int64("n", 100_000, "committed instructions per configuration")
	flag.Parse()

	program, err := workload.Build(*bench)
	if err != nil {
		log.Fatal(err)
	}

	cfgs := []config.Machine{
		config.Default128().WithPolicy(config.NoSpec),
		config.Default128().WithPolicy(config.Naive),
		config.Default128().WithPolicy(config.Selective),
		config.Default128().WithPolicy(config.StoreBarrier),
		config.Default128().WithPolicy(config.Sync),
		config.Default128().WithPolicy(config.StoreSets),
		config.Default128().WithPolicy(config.Oracle),
		config.Default128().WithPolicy(config.NoSpec).WithAddressScheduler(0),
		config.Default128().WithPolicy(config.Naive).WithAddressScheduler(0),
		config.Default128().WithPolicy(config.Naive).WithAddressScheduler(1),
		config.Default128().WithPolicy(config.Naive).WithAddressScheduler(2),
	}

	type result struct {
		cfg config.Machine
		run *stats.Run
	}
	var results []result
	for _, cfg := range cfgs {
		pipe, err := core.New(cfg, emu.NewTrace(emu.New(program)))
		if err != nil {
			log.Fatal(err)
		}
		run, err := pipe.Run(*n)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, result{cfg, run})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].run.IPC() > results[j].run.IPC() })

	base := results[len(results)-1].run.IPC() // slowest as reference
	fmt.Printf("Policy sweep on %s (%d instructions); hardware-free oracle included for reference\n\n", *bench, *n)
	fmt.Printf("%-4s %-12s %8s %10s %12s %14s\n", "rank", "config", "IPC", "vs worst", "misspec", "delayed loads")
	for i, r := range results {
		fmt.Printf("%-4d %-12s %8.3f %+9.1f%% %11.4f%% %14d\n",
			i+1, r.cfg.Name(), r.run.IPC(), 100*(r.run.IPC()/base-1),
			100*r.run.MisspecRate(), r.run.SyncWaits)
	}
}
