// Predictors demonstrates the memory dependence prediction hardware in
// isolation: it feeds the violation streams of a misspeculating kernel
// to the MDPT (speculation/synchronization), the selective predictor,
// the store-barrier predictor, and the store-set predictor, and shows
// how each one's decisions evolve.
package main

import (
	"fmt"

	"mdspec/internal/mdp"
)

func main() {
	cfg := mdp.DefaultTable()

	// A tiny instruction stream: two static loads and two static stores.
	// loadA truly depends on storeA (they touch the same address every
	// iteration); loadB is independent but shares a cache set with them.
	const (
		storeA = 0x40_0100
		loadA  = 0x40_0140
		storeB = 0x40_0200
		loadB  = 0x40_0240
	)

	fmt.Println("-- MDPT (speculation/synchronization, §3.6) --")
	m := mdp.NewMDPT(cfg)
	show := func(cycle int64) {
		la, oka := m.LoadSynonym(loadA, cycle)
		lb, okb := m.LoadSynonym(loadB, cycle)
		fmt.Printf("  cycle %-8d loadA: sync=%v (synonym %#x)   loadB: sync=%v (synonym %#x)\n",
			cycle, oka, la, okb, lb)
	}
	show(0)
	m.RecordViolation(loadA, storeA, 10)
	fmt.Println("  ... loadA violates against storeA once ...")
	show(11)        // a single violation is enough: synchronization always enforced
	show(1_500_000) // after the periodic flush the entry is gone
	fmt.Println()

	fmt.Println("-- Selective predictor (§3.5): needs three strikes --")
	s := mdp.NewSelective(cfg)
	for i := 1; i <= 4; i++ {
		s.RecordViolation(loadA, int64(i*100))
		fmt.Printf("  after violation %d: predict dependence = %v\n",
			i, s.Predict(loadA, int64(i*100+1)))
	}
	fmt.Println()

	fmt.Println("-- Store-barrier predictor (§3.5): keyed by the STORE --")
	sb := mdp.NewStoreBarrier(cfg)
	for i := 1; i <= 3; i++ {
		sb.RecordViolation(storeA, int64(i*100))
	}
	fmt.Printf("  storeA is a barrier: %v; storeB is a barrier: %v\n",
		sb.Predict(storeA, 400), sb.Predict(storeB, 400))
	fmt.Println()

	fmt.Println("-- Store sets (Chrysos & Emer, the paper's [4]) --")
	ss := mdp.NewStoreSets(cfg)
	ss.RecordViolation(loadA, storeA, 10)
	ss.RecordViolation(loadA, storeB, 20) // loadA also conflicts with storeB
	a, _ := ss.SSID(loadA, 30)
	sa, _ := ss.SSID(storeA, 30)
	sbid, _ := ss.SSID(storeB, 30)
	fmt.Printf("  loadA set=%d, storeA set=%d, storeB set=%d (both stores merged into the load's set)\n",
		a, sa, sbid)
	if _, ok := ss.SSID(loadB, 30); !ok {
		fmt.Println("  loadB never violated: no store set, speculates freely")
	}
}
