// Recurrence walks through the paper's Figure 7 example: a loop whose
// every iteration loads the value the previous iteration stored. It
// shows (a) how each speculation policy handles the loop-carried memory
// dependence in a continuous window, and (b) why the same address-based
// scheduler that eliminates misspeculation in a continuous window fails
// in a split window.
package main

import (
	"fmt"
	"log"

	"mdspec/internal/config"
	"mdspec/internal/core"
	"mdspec/internal/emu"
	"mdspec/internal/prog"
	"mdspec/internal/workload"
)

func simulate(p *prog.Program, cfg config.Machine, n int64) (ipc, misspec float64) {
	pipe, err := core.New(cfg, emu.NewTrace(emu.New(p)))
	if err != nil {
		log.Fatal(err)
	}
	res, err := pipe.Run(n)
	if err != nil {
		log.Fatal(err)
	}
	return res.IPC(), res.MisspecRate()
}

func main() {
	const n = 60_000

	fmt.Println("Part 1 — the Figure 7 loop (a[i] = a[i-1]+1) in a continuous window:")
	loop := workload.KernelRecurrence(0)
	for _, pol := range []config.Policy{config.NoSpec, config.Naive, config.Sync, config.Oracle} {
		ipc, ms := simulate(loop, config.Default128().WithPolicy(pol), n)
		fmt.Printf("  NAS/%-7s IPC %.3f  misspec %.3f%%\n", pol, ipc, 100*ms)
	}

	fmt.Println("\nPart 2 — §3.7: a store at the end of one task, its dependent load")
	fmt.Println("at the start of the next, under a 0-cycle address-based scheduler:")
	bait := workload.KernelTaskBoundary(32, 1<<30)
	cont := config.Default128().WithPolicy(config.Naive).WithAddressScheduler(0)
	split := cont.WithSplitWindow(4)
	cIPC, cMS := simulate(bait, cont, n)
	sIPC, sMS := simulate(bait, split, n)
	fmt.Printf("  continuous window: IPC %.3f  misspec %.4f%%\n", cIPC, 100*cMS)
	fmt.Printf("  4-unit split:      IPC %.3f  misspec %.4f%%\n", sIPC, 100*sMS)
	fmt.Println("\nIn the continuous window the store's address is always posted before")
	fmt.Println("the later-fetched load issues, so the scheduler blocks it; in the")
	fmt.Println("split window the younger unit issues its load before the older unit")
	fmt.Println("has even fetched the store — no scheduler latency can prevent that.")
}
