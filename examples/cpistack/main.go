// Cpistack renders a cycle-accounting view of the paper's argument:
// where do the cycles go under each load/store policy? For each selected
// benchmark it prints, per policy, the committing cycles and the
// zero-commit cycles split into front-end, memory and execution stalls —
// making visible *why* exploiting load/store parallelism pays (the
// memory-stall share collapses between NAS/NO and NAS/ORACLE).
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"mdspec/internal/config"
	"mdspec/internal/core"
	"mdspec/internal/emu"
	"mdspec/internal/workload"
)

func main() {
	n := flag.Int64("n", 80_000, "committed instructions per run")
	benchList := flag.String("bench", "102.swim,129.compress,126.gcc", "benchmarks")
	flag.Parse()

	policies := []config.Policy{config.NoSpec, config.Naive, config.Sync, config.Oracle}
	for _, bench := range strings.Split(*benchList, ",") {
		program, err := workload.Build(bench)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", bench)
		fmt.Printf("  %-10s %7s  %s\n", "policy", "IPC", "cycle breakdown")
		for _, pol := range policies {
			pipe, err := core.New(config.Default128().WithPolicy(pol), emu.NewTrace(emu.New(program)))
			if err != nil {
				log.Fatal(err)
			}
			r, err := pipe.Run(*n)
			if err != nil {
				log.Fatal(err)
			}
			fe, mem, ex := r.StallBreakdown()
			busy := 1 - fe - mem - ex
			fmt.Printf("  %-10s %7.3f  %s  busy %4.1f%%  mem-stall %4.1f%%  exec-stall %4.1f%%  front-end %4.1f%%\n",
				"NAS/"+pol.String(), r.IPC(), bar(busy, mem), 100*busy, 100*mem, 100*ex, 100*fe)
		}
		fmt.Println()
	}
	fmt.Println("Reading the bars: '#' committing, 'm' stalled on memory, '.' other stalls.")
	fmt.Println("The paper's point in one picture: moving down the policy list shrinks 'm'.")
}

// bar renders a 40-char cycle-breakdown bar.
func bar(busy, mem float64) string {
	const width = 40
	nb := int(busy*width + 0.5)
	nm := int(mem*width + 0.5)
	if nb+nm > width {
		nm = width - nb
	}
	return "[" + strings.Repeat("#", nb) + strings.Repeat("m", nm) +
		strings.Repeat(".", width-nb-nm) + "]"
}
